//! Fig 2 — the two-stage domain partitioning: "block division and
//! subsequent grid generation".
//!
//! The figure's content is the framework's central memory argument
//! (§2.2): stage 1 partitions the domain into *blocks* (setup cost and
//! memory scale with the block count); only stage 2 — executed per rank,
//! after distribution — materializes the *cell grids* of locally owned
//! blocks. The global grid never exists in any single memory. This
//! harness demonstrates both stages with hard numbers: a domain whose
//! full grid would need terabytes is set up in megabytes, and each rank
//! allocates only its own share.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_blockforest::{distribute, morton_balance, SetupForest};
use trillium_geometry::vec3::vec3;
use trillium_geometry::Aabb;

fn main() {
    let args = HarnessArgs::parse();
    // Stage 1 at (near-)paper scale: the JUQUEEN weak-scaling domain.
    let (roots, cells) = if args.full {
        ([128usize, 96, 96], [80usize, 80, 80]) // ~1.2M blocks
    } else {
        ([48usize, 32, 32], [80usize, 80, 80])
    };
    let nblocks = roots[0] * roots[1] * roots[2];
    let total_cells = nblocks as f64 * (cells[0] * cells[1] * cells[2]) as f64;

    section("stage 1: block division (global, cheap)");
    let domain =
        Aabb::new(vec3(0.0, 0.0, 0.0), vec3(roots[0] as f64, roots[1] as f64, roots[2] as f64));
    let t0 = std::time::Instant::now();
    let mut forest = SetupForest::uniform(domain, roots, cells);
    let procs = (nblocks / 4) as u32;
    morton_balance(&mut forest, procs);
    let setup_time = t0.elapsed();
    let block_bytes = nblocks * std::mem::size_of::<trillium_blockforest::SetupBlock>();
    let grid_bytes = total_cells * 19.0 * 8.0 * 2.0; // two PDF fields
    println!(
        "domain: {} blocks of {}^3 cells = {:.3e} cells total",
        nblocks, cells[0], total_cells
    );
    println!(
        "stage-1 memory: {:.1} MiB of block metadata (vs {:.1} TiB if the grid were global)",
        block_bytes as f64 / (1 << 20) as f64,
        grid_bytes / (1u64 << 40) as f64
    );
    println!("stage-1 wall time: {:.2?} (balanced over {procs} processes)", setup_time);

    section("stage 2: grid generation (per rank, local only)");
    let views = distribute(&forest);
    let rank = 0usize;
    let v = &views[rank];
    let local_cells: f64 = v.blocks.len() as f64 * (cells[0] * cells[1] * cells[2]) as f64;
    println!(
        "rank 0 owns {} of {} blocks -> would allocate {:.1} MiB of PDF data ({:.6} % of the global grid)",
        v.blocks.len(),
        nblocks,
        local_cells * 19.0 * 8.0 * 2.0 / (1 << 20) as f64,
        100.0 * local_cells / total_cells
    );
    println!(
        "rank 0 forest knowledge: {} units (own blocks + remote links) — independent of the machine size",
        v.knowledge_size()
    );
    println!();
    println!("paper: \"the memory usage of a particular process only depends on the");
    println!("number of blocks assigned to this process, and not on the size of the");
    println!("entire simulation\" (§2.2) — which is what makes 10^12-cell domains");
    println!("possible on 2 GiB/core machines.");

    if args.json {
        emit_json(
            "fig2_two_stage",
            serde_json::json!({
                "blocks": nblocks,
                "cells_total": total_cells,
                "procs": procs,
                "stage1_seconds": setup_time.as_secs_f64(),
                "stage1_block_metadata_bytes": block_bytes,
                "global_grid_bytes": grid_bytes,
                "rank0_blocks": v.blocks.len(),
                "rank0_cells": local_cells,
                "rank0_knowledge_units": v.knowledge_size(),
            }),
        );
    }
}
