//! Ablation: fluid-aware (sparse) vs fluid-blind (dense) ghost messages.
//!
//! The paper's communication "is unaware of fluid lattice cells and
//! therefore the amount of data communicated between neighboring blocks
//! is the same as for densely populated blocks" (§4.3) — an explicit
//! inefficiency on sparse vascular domains. This harness quantifies what
//! the fluid-aware packing (`pack_face_sparse`, implemented here as the
//! extension) would save, as a function of block fluid fraction.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_blockforest::SetupForest;
use trillium_comm::{pack_face, pack_face_sparse};
use trillium_field::{Shape, SoaPdfField};
use trillium_geometry::voxelize::{voxelize_block, VoxelizeConfig};
use trillium_lattice::D3Q19;
use trillium_scaling::paper_tree;

fn main() {
    let args = HarnessArgs::parse();
    let tree = paper_tree();
    let edge = if args.full { 40 } else { 20 };
    let dx_list = [0.5, 0.25, 0.12];

    section("Sparse vs dense ghost-message volume on vascular blocks");
    println!(
        "{:<8} {:>8} {:>12} {:>14} {:>14} {:>10}",
        "dx", "blocks", "fluid frac", "dense B/blk", "sparse B/blk", "saving %"
    );
    let mut rows = Vec::new();
    for dx in dx_list {
        let forest = SetupForest::from_domain_sampled(&tree, dx, [edge, edge, edge], 4);
        let shape = Shape::cube(edge);
        let field = SoaPdfField::<D3Q19>::new(shape);
        let mut dense_total = 0usize;
        let mut sparse_total = 0usize;
        let mut fluid = 0.0;
        let sample: Vec<_> =
            forest.blocks.iter().step_by((forest.num_blocks() / 24).max(1)).collect();
        for b in &sample {
            let flags = voxelize_block(&tree, b.aabb.min, dx, shape, &VoxelizeConfig::default());
            fluid += b.workload / (edge * edge * edge) as f64;
            for d in [[1i8, 0, 0], [-1, 0, 0], [0, 1, 0], [0, -1, 0], [0, 0, 1], [0, 0, -1]] {
                let mut buf = Vec::new();
                pack_face::<D3Q19, _>(&field, d, &mut buf);
                dense_total += buf.len();
                let mut sbuf = Vec::new();
                pack_face_sparse::<D3Q19, _>(&field, &flags, d, &mut sbuf);
                sparse_total += sbuf.len();
            }
        }
        let n = sample.len();
        println!(
            "{:<8} {:>8} {:>12.3} {:>14.0} {:>14.0} {:>10.1}",
            dx,
            forest.num_blocks(),
            fluid / n as f64,
            dense_total as f64 / n as f64,
            sparse_total as f64 / n as f64,
            100.0 * (1.0 - sparse_total as f64 / dense_total as f64)
        );
        rows.push(serde_json::json!({
            "dx": dx,
            "blocks": forest.num_blocks(),
            "fluid_fraction": fluid / n as f64,
            "dense_bytes_per_block": dense_total as f64 / n as f64,
            "sparse_bytes_per_block": sparse_total as f64 / n as f64,
            "saving_fraction": 1.0 - sparse_total as f64 / dense_total as f64,
        }));
    }
    println!();
    println!("expect: savings shrink as blocks get better filled (finer dx, cf. Fig 7's");
    println!("rising fluid fraction) — the paper's fluid-blind scheme costs most at");
    println!("coarse partitionings and becomes near-optimal at extreme scale.");

    if args.json {
        emit_json("ablation_sparse_comm", serde_json::json!(rows));
    }
}
