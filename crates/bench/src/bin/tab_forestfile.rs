//! §2.2 table — block-structure file sizes: the minimal-byte-width binary
//! format at several scales, reproducing the paper's claims ("2 bytes per
//! rank for up to 65,536 processes"; "half a million processes ... about
//! 40 MiB" — ours is smaller because only ID + rank + workload are
//! stored; see EXPERIMENTS.md).

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_blockforest::{file, morton_balance, SetupForest};
use trillium_geometry::vec3::vec3;
use trillium_geometry::Aabb;

fn main() {
    let args = HarnessArgs::parse();
    section("Block-structure file format (§2.2)");
    println!(
        "{:<12} {:<12} {:>12} {:>14} {:>10}",
        "blocks", "processes", "file bytes", "bytes/block", "load ok"
    );
    let mut sizes = vec![(8usize, 8u32), (4096, 4096), (32_768, 32_768), (262_144, 262_144)];
    if args.full {
        sizes.push((512_000, 512_000));
    }
    let mut rows = Vec::new();
    for (blocks, procs) in sizes {
        let n = (blocks as f64).cbrt().round() as usize;
        let e = n as f64;
        let mut f = SetupForest::uniform(
            Aabb::new(vec3(0.0, 0.0, 0.0), vec3(e, e, e)),
            [n, n, n],
            [100; 3],
        );
        morton_balance(&mut f, procs);
        let data = file::save(&f);
        let ok = file::load(&data).map(|g| g.num_blocks() == f.num_blocks()).unwrap_or(false);
        println!(
            "{:<12} {:<12} {:>12} {:>14.1} {:>10}",
            f.num_blocks(),
            procs,
            data.len(),
            data.len() as f64 / f.num_blocks() as f64,
            ok
        );
        rows.push(serde_json::json!({
            "blocks": f.num_blocks(),
            "processes": procs,
            "file_bytes": data.len(),
            "bytes_per_block": data.len() as f64 / f.num_blocks() as f64,
            "round_trip_ok": ok,
        }));
    }
    println!();
    println!("rank byte-width examples: 65,536 processes -> 2 bytes; 65,537 -> 3 bytes");
    println!("byte widths: {} / {}", file::byte_width(65_535), file::byte_width(65_536));

    if args.json {
        emit_json("tab_forestfile", serde_json::json!(rows));
    }
}
