//! Ablation: fault injection and checkpoint/restart recovery.
//!
//! Runs the vascular scenario twice: once under the plain driver (the
//! ground truth) and once under the resilient schedule with a
//! deterministic fault plan — a fail-stop rank crash, message drops, or
//! message reordering, selected with `--fault` and seeded with
//! `--seed`. The resilient run checkpoints the distributed block forest
//! every few steps, detects the failure through bounded-wait receives,
//! rolls the cohort back to the last consistent checkpoint and replays.
//!
//! Two properties are asserted, not just reported:
//!
//! * **recovery converges** — the faulted run's final PDFs are bitwise
//!   identical to the unfaulted ground truth, and mass is conserved;
//! * **failures are reproducible** — running the same seed twice yields
//!   the identical failure trace (the deterministic-simulation property
//!   that makes distributed failures debuggable).
//!
//! The second table evaluates the Young/Daly checkpoint-interval model
//! at machine scale: the laptop run checkpoints every few steps because
//! failures are injected every few steps; JUQUEEN checkpoints every few
//! *minutes* because 28k nodes fail a few times a day. Pass `--json`
//! for raw data.

use std::sync::Arc;
use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_core::driver::{run_distributed_with, DriverConfig};
use trillium_core::prelude::*;
use trillium_core::recovery::ResilienceConfig;
use trillium_geometry::voxelize::VoxelizeConfig;
use trillium_geometry::{VascularTree, VascularTreeParams};
use trillium_machine::MachineSpec;
use trillium_scaling::resilience::{resilience_series, ResilienceModel};

const RANKS: u32 = 4;

fn vascular_scenario(full: bool) -> Scenario {
    let tree = VascularTree::generate(&VascularTreeParams {
        generations: if full { 6 } else { 4 },
        root_radius: 1.2,
        root_length: 7.0,
        ..Default::default()
    });
    let dx = if full { 0.1 } else { 0.25 };
    Scenario::from_sdf(
        "vascular-resilience",
        Arc::new(tree),
        dx,
        [16, 16, 16],
        0.06,
        [0.0, 0.0, 0.05],
        1.0,
        VoxelizeConfig::default(),
    )
}

/// Reads `--flag value` from the raw argument list.
fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

fn fault_plan(mode: &str, seed: u64, steps: u64) -> FaultConfig {
    match mode {
        "crash" => FaultConfig::new(seed).with_crash(RANKS - 2, steps / 2),
        "drop" => FaultConfig::new(seed).with_drops(0.01).with_fault_cap(4),
        "reorder" => FaultConfig::new(seed).with_reordering(0.05, 3).with_fault_cap(16),
        "dup" => FaultConfig::new(seed).with_duplicates(0.05).with_fault_cap(16),
        other => panic!("unknown --fault mode {other:?} (crash|drop|reorder|dup)"),
    }
}

fn main() {
    let args = HarnessArgs::parse();
    let steps = if args.full { 120 } else { 40 };
    let seed: u64 = arg_value("--seed").map(|s| s.parse().expect("--seed N")).unwrap_or(1);
    let mode = arg_value("--fault").unwrap_or_else(|| "crash".to_string());
    let fault = fault_plan(&mode, seed, steps);

    section("Fault injection and checkpoint/restart recovery");
    println!(
        "{RANKS} ranks, {steps} steps, fault mode {mode:?}, seed {seed}, \
         checkpoint every 8 steps"
    );

    let cfg = DriverConfig { collect_pdfs: true, ..DriverConfig::default() };
    let truth = run_distributed_with(&vascular_scenario(args.full), RANKS, 1, steps, &[], cfg);

    let rc = ResilienceConfig {
        checkpoint_every: 8,
        fault: Some(fault),
        driver: cfg,
        ..ResilienceConfig::default()
    };
    let scenario = vascular_scenario(args.full);
    let faulted = run_distributed_resilient(&scenario, RANKS, 1, steps, &[], &rc)
        .expect("capped faults are recoverable");
    let replay = run_distributed_resilient(&scenario, RANKS, 1, steps, &[], &rc)
        .expect("capped faults are recoverable");

    let bitwise = truth.pdf_dump() == faulted.run.pdf_dump();
    let trace = faulted.failure_trace();
    let reproducible = trace == replay.failure_trace();
    assert!(bitwise, "recovery must converge to the unfaulted state bitwise");
    assert!(reproducible, "same fault seed must reproduce the identical failure trace");
    assert!(!faulted.run.has_nan(), "run went unstable");
    assert!(faulted.run.mass_drift().abs() < 1e-9, "mass drift {}", faulted.run.mass_drift());

    println!();
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12} {:>12}",
        "run", "recoveries", "replayed", "checkpoints", "fault events", "mass drift"
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12} {:>12.2e}",
        "unfaulted (truth)",
        0,
        0,
        "-",
        0,
        truth.mass_drift().abs()
    );
    println!(
        "{:<22} {:>10} {:>10} {:>12} {:>12} {:>12.2e}",
        format!("{mode} faults"),
        faulted.recoveries(),
        faulted.replayed_steps(),
        faulted.checkpoints(),
        trace.len(),
        faulted.run.mass_drift().abs()
    );
    println!();
    println!(
        "final state bitwise identical to unfaulted run: {bitwise}; \
         failure trace reproducible across reruns: {reproducible}"
    );

    section("Young/Daly optimal checkpoint interval at machine scale");
    let model = ResilienceModel::default();
    println!(
        "{:<10} {:>9} {:>14} {:>12} {:>12} {:>10} {:>12}",
        "machine", "nodes", "MTBF (h)", "ckpt (s)", "tau* (s)", "steps", "waste"
    );
    let mut machine_rows = Vec::new();
    for machine in [MachineSpec::juqueen(), MachineSpec::supermuc()] {
        let rows = resilience_series(&model, &machine);
        let last = rows.last().expect("non-empty series").clone();
        println!(
            "{:<10} {:>9} {:>14.1} {:>12.1} {:>12.0} {:>10} {:>12.4}",
            machine.name,
            last.nodes,
            last.system_mtbf_hours,
            last.checkpoint_seconds,
            last.tau_young_seconds,
            last.steps_between_checkpoints,
            last.waste_fraction
        );
        machine_rows.push((machine.name, rows));
    }
    println!();
    println!("expect: one failure event, a rollback to the last checkpoint, and a replay");
    println!("that lands bitwise on the unfaulted state — while at machine scale the model");
    println!("turns the same checkpoint machinery into a minutes-scale interval choice.");

    if args.json {
        emit_json(
            "ablation_resilience",
            serde_json::json!({
                "scenario": "vascular tree",
                "ranks": RANKS,
                "steps": steps,
                "fault_mode": mode,
                "seed": seed,
                "checkpoint_every": 8,
                "recoveries": faulted.recoveries(),
                "replayed_steps": faulted.replayed_steps(),
                "checkpoints": faulted.checkpoints(),
                "fault_events": trace.len(),
                "bitwise_identical": bitwise,
                "trace_reproducible": reproducible,
                "mass_drift": faulted.run.mass_drift(),
                "model": machine_rows
                    .iter()
                    .map(|(name, rows)| serde_json::json!({"machine": name, "rows": rows}))
                    .collect::<Vec<_>>(),
            }),
        );
    }
}
