//! Fig 5 — SMT levels of the optimized TRT kernel on a JUQUEEN node
//! (model series; the host has no 4-way SMT A2 cores, so there is no
//! measured analogue — see EXPERIMENTS.md).

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_scaling::fig5::fig5_series;

fn main() {
    let args = HarnessArgs::parse();
    section("Fig 5: SMT scaling on a JUQUEEN node (model)");
    let rows = fig5_series();
    println!("{:<8} {:>10} {:>10} {:>10}", "cores", "1-way", "2-way", "4-way");
    for c in 1..=16u32 {
        let at = |w: u32| rows.iter().find(|r| r.ways == w && r.cores == c).unwrap().mlups;
        println!("{:<8} {:>10.1} {:>10.1} {:>10.1}", c, at(1), at(2), at(4));
    }
    println!();
    println!("paper: 4-way SMT is required to saturate the memory interface (76.2 MLUPS roofline)");
    if args.json {
        emit_json("fig5_smt", serde_json::json!(rows));
    }
}
