//! Fig 6 — weak scaling on dense regular domains for both machines:
//! MLUPS/core and MPI share per configuration and core count (model),
//! plus a real distributed lid-driven-cavity run on the host for the
//! functional path (ranks as threads).

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_core::prelude::*;
use trillium_machine::MachineSpec;
use trillium_scaling::fig6::{fig6_series, paper_cells_per_core, paper_configs};

fn main() {
    let args = HarnessArgs::parse();
    let mut all = Vec::new();
    for machine in [MachineSpec::supermuc(), MachineSpec::juqueen()] {
        let cells = paper_cells_per_core(&machine);
        section(&format!("Fig 6: weak scaling on {} ({} cells/core)", machine.name, cells));
        let rows = fig6_series(&machine, cells);
        for config in paper_configs(&machine) {
            println!("-- {} --", config.label());
            println!("{:<12} {:>14} {:>12}", "cores", "MLUPS/core", "MPI %");
            for r in rows.iter().filter(|r| r.config == config.label()) {
                println!(
                    "{:<12} {:>14.2} {:>12.1}",
                    r.cores,
                    r.mlups_per_core,
                    100.0 * r.mpi_fraction
                );
            }
        }
        all.extend(rows);
    }

    section("real distributed run on host (ranks = threads)");
    let (n, b, procs, steps) = if args.full { (96, 4, 8, 20) } else { (48, 2, 4, 10) };
    let scenario = Scenario::lid_driven_cavity(n, b, 0.05, 0.05);
    let r = run_distributed(&scenario, procs, 1, steps);
    let stats = r.total_stats();
    let total_kernel: f64 = r.ranks.iter().map(|x| x.kernel_time).sum();
    println!(
        "{procs} ranks x {steps} steps on {n}^3 cells: {:.1} MLUPS aggregate (kernel only), comm share {:.1} %, mass drift {:.1e}",
        stats.mlups(total_kernel / procs as f64),
        100.0 * r.comm_fraction(),
        r.mass_drift()
    );

    if args.json {
        emit_json("fig6_weak_dense", serde_json::json!(all));
    }
}
