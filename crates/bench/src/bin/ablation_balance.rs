//! Ablation: Morton-curve vs multilevel-graph load balancing on the
//! sparse vascular block forest (the design choice of paper §2.3, where
//! METIS is used because blocks carry unequal workloads and communication
//! weights).
//!
//! Reports, for several process counts: workload imbalance (max/mean) and
//! communication edge cut (doubles per time step crossing rank
//! boundaries) for both balancers, plus the naive block-index chunking
//! baseline.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_blockforest::{balance_with, morton_balance, SetupForest};
use trillium_core::loadbalance::{block_graph, graph_balance};
use trillium_scaling::paper_tree;

fn naive_chunks(forest: &mut SetupForest, procs: u32) {
    let n = forest.num_blocks();
    let per = n.div_ceil(procs as usize);
    balance_with(forest, procs, |i| (i / per) as u32);
}

fn main() {
    let args = HarnessArgs::parse();
    let tree = paper_tree();
    section("Load-balancing ablation on the coronary-tree forest");
    let dx = if args.full { 0.05 } else { 0.12 };
    let base = SetupForest::from_domain_sampled(&tree, dx, [16, 16, 16], 4);
    println!(
        "forest: {} blocks, {:.3e} fluid cells, mean fill {:.2}",
        base.num_blocks(),
        base.total_workload(),
        base.total_workload() / base.num_blocks() as f64 / 4096.0
    );
    println!();
    println!(
        "{:<8} {:<10} {:>12} {:>16} {:>14}",
        "procs", "balancer", "imbalance", "edge cut", "cut vs naive"
    );
    let mut rows = Vec::new();
    for procs in [8u32, 32, 128] {
        let g = block_graph(&base);

        let mut naive = base.clone();
        naive_chunks(&mut naive, procs);
        let cut_naive = g.edge_cut(&naive.blocks.iter().map(|b| b.rank).collect::<Vec<_>>());
        println!(
            "{:<8} {:<10} {:>12.3} {:>16.0} {:>14.2}",
            procs,
            "naive",
            naive.imbalance(),
            cut_naive,
            1.0
        );

        let mut morton = base.clone();
        morton_balance(&mut morton, procs);
        let cut_m = g.edge_cut(&morton.blocks.iter().map(|b| b.rank).collect::<Vec<_>>());
        println!(
            "{:<8} {:<10} {:>12.3} {:>16.0} {:>14.2}",
            procs,
            "morton",
            morton.imbalance(),
            cut_m,
            cut_m / cut_naive
        );

        let mut graph = base.clone();
        let cut_g = graph_balance(&mut graph, procs, 1);
        println!(
            "{:<8} {:<10} {:>12.3} {:>16.0} {:>14.2}",
            procs,
            "graph",
            graph.imbalance(),
            cut_g,
            cut_g / cut_naive
        );
        rows.push(serde_json::json!({
            "procs": procs,
            "imbalance_naive": naive.imbalance(),
            "imbalance_morton": morton.imbalance(),
            "imbalance_graph": graph.imbalance(),
            "edge_cut_naive": cut_naive,
            "edge_cut_morton": cut_m,
            "edge_cut_graph": cut_g,
        }));
    }
    println!();
    println!("expect: the graph partitioner holds imbalance near 1.0 with a");
    println!("competitive cut; Morton is nearly as good at a fraction of the cost;");
    println!("naive index chunking suffers on both metrics — the reason the paper");
    println!("uses METIS for sparse geometries.");

    if args.json {
        emit_json(
            "ablation_balance",
            serde_json::json!({
                "blocks": base.num_blocks(),
                "fluid_cells": base.total_workload(),
                "rows": rows,
            }),
        );
    }
}
