//! §4.1 table — roofline arithmetic for both machines and the measured
//! host: STREAM vs LBM-pattern bandwidth and the resulting MLUPS bounds.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_machine::{measure_copy_bandwidth, measure_lbm_bandwidth, MachineSpec};
use trillium_perfmodel::{bytes_per_lup, roofline_mlups};

fn main() {
    let args = HarnessArgs::parse();
    section("Roofline inputs and bounds (paper §4.1)");
    println!("bytes per D3Q19 lattice update (write-allocate): {}", bytes_per_lup(19));
    println!();
    println!(
        "{:<12} {:>14} {:>16} {:>18}",
        "machine", "STREAM GiB/s", "LBM-pattern GiB/s", "roofline MLUPS"
    );
    for m in [MachineSpec::supermuc(), MachineSpec::juqueen()] {
        println!(
            "{:<12} {:>14.1} {:>16.1} {:>18.1}",
            m.name,
            m.stream_bw_gib,
            m.lbm_bw_gib,
            roofline_mlups(m.lbm_bw_gib, 19)
        );
    }

    let size = if args.full { 64 << 20 } else { 16 << 20 };
    let copy = measure_copy_bandwidth(size, 5);
    let lbm = measure_lbm_bandwidth(size / 19 / 8, 5);
    println!(
        "{:<12} {:>14.1} {:>16.1} {:>18.1}   (measured now)",
        "host",
        copy,
        lbm,
        roofline_mlups(lbm, 19)
    );
    println!();
    println!("paper: 37.3 GiB/s -> 87.8 MLUPS (SuperMUC socket); 32.4 GiB/s -> 76.2 MLUPS (JUQUEEN node)");
    if args.json {
        emit_json(
            "tab_roofline",
            serde_json::json!({
                "host_stream_gib": copy,
                "host_lbm_gib": lbm,
                "host_roofline_mlups": roofline_mlups(lbm, 19),
            }),
        );
    }
}
