//! Ablation: runtime load rebalancing on a skewed vascular run.
//!
//! The static balancer assigns blocks from a-priori workload estimates
//! (§2.3); this ablation starts from a deliberately bad assignment (rank
//! 0 overloaded) of a small synthetic vascular tree and compares the same
//! run with the runtime rebalancer off (monitoring only) and on. The
//! rebalancer samples wall-clock cost per block per sweep, feeds the
//! measured costs — not static cell counts — to the repartitioner, and
//! migrates whole blocks (PDF state and all) between ranks.
//!
//! Reports achieved MLUPS, the measured max/avg load-ratio history, and
//! the final per-block measured costs. Pass `--json` for the raw series.

use std::sync::Arc;
use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_core::driver::{run_distributed_rebalanced, RebalanceConfig, RunResult};
use trillium_core::prelude::*;
use trillium_geometry::voxelize::VoxelizeConfig;
use trillium_geometry::{VascularTree, VascularTreeParams};

const RANKS: u32 = 4;
const SKEW: f64 = 0.7;

fn vascular_scenario(full: bool) -> Scenario {
    let tree = VascularTree::generate(&VascularTreeParams {
        generations: if full { 6 } else { 4 },
        root_radius: 1.2,
        root_length: 7.0,
        ..Default::default()
    });
    let dx = if full { 0.1 } else { 0.25 };
    Scenario::from_sdf(
        "vascular-rebalance",
        Arc::new(tree),
        dx,
        [16, 16, 16],
        0.06,
        [0.0, 0.0, 0.05],
        1.0,
        VoxelizeConfig::default(),
    )
    .with_skewed_balance(SKEW)
}

/// Achieved MLUPS over the critical-path *work* time: the slowest rank's
/// compute + ghost-work + rebalance-epoch seconds (`RunResult::work_wall`).
/// The harness emulates ranks as time-sliced threads on one host, so raw
/// elapsed time per rank counts every other rank's work as recv-wait and
/// is flat regardless of the assignment; on a real machine the waiting
/// overlaps the slow rank's work and wall clock is this maximum. Note the
/// rebalanced run's epochs (all-reduce, planning, serialization,
/// migration) are charged in full — the overhead is not hidden.
fn mlups(r: &RunResult) -> f64 {
    r.total_stats().mlups(r.work_wall())
}

fn main() {
    let args = HarnessArgs::parse();
    let steps = if args.full { 300 } else { 120 };
    section("Runtime-rebalance ablation on a skewed vascular tree");
    println!(
        "{RANKS} ranks, rank 0 statically assigned ~{:.0} % of the workload, {steps} steps",
        100.0 * SKEW
    );

    let epoch = 5;
    let off = run_distributed_rebalanced(
        &vascular_scenario(args.full),
        RANKS,
        1,
        steps,
        RebalanceConfig { every_n_steps: epoch, ..RebalanceConfig::monitor_only() },
    );
    let on = run_distributed_rebalanced(
        &vascular_scenario(args.full),
        RANKS,
        1,
        steps,
        RebalanceConfig {
            every_n_steps: epoch,
            // Fire on the initial ~2.5x skew but not on the granularity-
            // limited residual (~1.3-1.5 with ~7 heterogeneous blocks per
            // rank): re-firing on the residual churns blocks for no gain.
            threshold: 1.6,
            hysteresis: 2,
            cooldown_epochs: 3,
            ..RebalanceConfig::default()
        },
    );
    assert!(!off.has_nan() && !on.has_nan(), "run went unstable");

    let (m_off, m_on) = (mlups(&off), mlups(&on));
    println!();
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>12}",
        "rebalance", "MLUPS", "final ratio", "migrations", "mass drift"
    );
    for (label, r, m) in [("off", &off, m_off), ("on", &on, m_on)] {
        println!(
            "{:<12} {:>10.2} {:>12.3} {:>12} {:>12.2e}",
            label,
            m,
            r.final_load_ratio().unwrap_or(1.0),
            r.total_migrations(),
            r.mass_drift().abs()
        );
    }

    println!();
    println!("max/avg load ratio over time (measured, EWMA costs):");
    println!("{:<8} {:>12} {:>12}", "step", "off", "on");
    for (a, b) in off.imbalance_history().iter().zip(on.imbalance_history()) {
        println!("{:<8} {:>12.3} {:>12.3}", a.0, a.1, b.1);
    }

    // The planner input: measured seconds per block, not cell counts.
    let costs: Vec<(u64, f64, u64)> = on
        .ranks
        .iter()
        .filter_map(|r| r.rebalance.as_ref())
        .flat_map(|rb| rb.final_costs.iter().copied())
        .collect();
    println!();
    println!("sample of measured per-block costs driving the repartitioner:");
    println!("{:<12} {:>16} {:>12}", "block", "cost (us/step)", "fluid cells");
    for (id, cost, fluid) in costs.iter().take(8) {
        println!("{:<12} {:>16.2} {:>12}", id, cost * 1e6, fluid);
    }

    println!();
    println!("expect: the monitor-only run stays pinned at its skewed ratio while");
    println!("the rebalanced run migrates blocks off rank 0 within a few epochs,");
    println!("drops the measured ratio toward 1, and finishes with higher MLUPS.");

    if args.json {
        let history_off: Vec<_> =
            off.imbalance_history().iter().map(|&(s, r)| vec![s as f64, r]).collect();
        let history_on: Vec<_> =
            on.imbalance_history().iter().map(|&(s, r)| vec![s as f64, r]).collect();
        let block_costs: Vec<_> = costs
            .iter()
            .map(|&(id, cost, fluid)| {
                serde_json::json!({
                    "block": id,
                    "measured_cost_seconds": cost,
                    "fluid_cells": fluid
                })
            })
            .collect();
        emit_json(
            "ablation_rebalance",
            serde_json::json!({
                "scenario": "skewed vascular tree",
                "ranks": RANKS,
                "steps": steps,
                "skew_fraction": SKEW,
                "cost_source": "measured EWMA wall-clock per block (not cell counts)",
                "mlups_metric": "critical-path work time, rebalance epochs charged (RunResult::work_wall)",
                "mlups_off": m_off,
                "mlups_on": m_on,
                "mlups_gain": m_on / m_off,
                "migrations": on.total_migrations(),
                "rebalance_rounds": on.rebalance_count(),
                "final_ratio_off": off.final_load_ratio().unwrap_or(1.0),
                "final_ratio_on": on.final_load_ratio().unwrap_or(1.0),
                "mass_drift_on": on.mass_drift(),
                "imbalance_history_off": history_off,
                "imbalance_history_on": history_on,
                "measured_block_costs": block_costs
            }),
        );
    }
}
