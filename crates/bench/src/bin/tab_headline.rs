//! §4.2 headline numbers: paper vs. model reproduction.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_scaling::headline::headlines;

fn main() {
    let args = HarnessArgs::parse();
    section("§4.2 headline numbers: paper vs reproduction");
    println!("{:<38} {:>12} {:>12} {:>8}", "quantity", "paper", "ours", "ratio");
    let rows = headlines();
    for r in &rows {
        println!("{:<38} {:>12.1} {:>12.1} {:>8.2}", r.quantity, r.paper, r.ours, r.ours / r.paper);
    }
    if args.json {
        emit_json("tab_headline", serde_json::json!(rows));
    }
}
