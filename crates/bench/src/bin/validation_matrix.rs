//! Physics validation matrix: case × collision operator × schedule ×
//! kernel tier, each cell judged against a quantitative threshold
//! (DESIGN.md §13).
//!
//! Default is the reduced CI matrix (all four cases, SRT/TRT/MRT, sync +
//! overlapped schedules, auto kernel tier); `--full` sweeps all four
//! operators, all four schedules and both explicit kernel tiers. Failed
//! cells dump their final macroscopic fields as legacy-VTK files under
//! `target/validation-vtk/` for inspection, and the process exits
//! non-zero so CI can gate on physics regressions.

use trillium_bench::validation::{
    dump_failed_vtk, is_supported, kernel_label, run_cell, MatrixSpec,
};
use trillium_bench::{bench_report, section, HarnessArgs};

fn main() {
    let args = HarnessArgs::parse();
    let spec = if args.full { MatrixSpec::full() } else { MatrixSpec::reduced() };

    section("physics validation matrix");
    if !args.full {
        println!("(reduced CI matrix: SRT/TRT/MRT x sync/overlapped; --full for 4x4x2)");
    }
    println!(
        "{:<14} {:<8} {:<11} {:<9} {:<22} {:>12}  {:<14} {}",
        "case", "operator", "schedule", "kernel", "metric", "value", "threshold", "verdict"
    );

    let vtk_dir = std::path::Path::new("target/validation-vtk");
    let mut rows = Vec::new();
    let mut failures = 0usize;
    let mut skipped = 0usize;
    for &case in &spec.cases {
        for &op in &spec.operators {
            for &sched in &spec.schedules {
                for &kernel in &spec.kernels {
                    if !is_supported(case, op) {
                        // See `validation::is_supported`: SRT/TRT diverge
                        // on this case at CI resolution by design.
                        println!(
                            "{:<14} {:<8} {:<11} {:<9} {:<22} {:>12}  {:<14} skip (operator unstable at CI resolution)",
                            case.label(), op.label(), sched.label(), kernel_label(kernel),
                            case.metric(), "-", "-",
                        );
                        rows.push(serde_json::json!({
                            "case": case.label(), "operator": op.label(),
                            "schedule": sched.label(), "kernel": kernel_label(kernel),
                            "metric": case.metric(), "skipped": true,
                        }));
                        skipped += 1;
                        continue;
                    }
                    let cell = run_cell(case, op, sched, kernel);
                    println!(
                        "{:<14} {:<8} {:<11} {:<9} {:<22} {:>12.6} {:<14} {}",
                        cell.case,
                        cell.operator,
                        cell.schedule,
                        cell.kernel,
                        cell.metric,
                        cell.value,
                        cell.threshold,
                        if cell.pass { "pass" } else { "FAIL" },
                    );
                    if !cell.pass {
                        failures += 1;
                        let stem = format!(
                            "{}_{}_{}_{}",
                            cell.case, cell.operator, cell.schedule, cell.kernel
                        );
                        match dump_failed_vtk(&cell.scenario, &cell.run, vtk_dir, &stem) {
                            Ok(paths) => {
                                println!(
                                    "  dumped {} VTK block file(s) to {}",
                                    paths.len(),
                                    vtk_dir.display()
                                )
                            }
                            Err(e) => println!("  VTK dump failed: {e}"),
                        }
                    }
                    rows.push(cell.row());
                }
            }
        }
    }

    println!();
    let total = rows.len();
    println!(
        "{}/{} cells passed ({} skipped by design)",
        total - failures - skipped,
        total,
        skipped
    );
    if args.json {
        bench_report("validation_matrix", serde_json::Value::Array(rows));
    }
    if failures > 0 {
        std::process::exit(1);
    }
}
