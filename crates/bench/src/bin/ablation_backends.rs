//! Ablation: heterogeneous vs uniform block placement on a modeled
//! mixed CPU/GPU rank pool.
//!
//! The backend abstraction makes every rank's sweep dispatch a
//! capability, not a constant: a pool can mix AVX2 sockets with
//! GPU-class (workgroup) devices. This harness builds the
//! per-(backend, tier) cost table from the analytic models — the ECM/
//! tier models for the CPU backends, the latency + bandwidth device
//! model for the workgroup backend — and compares two placements of the
//! same dense block set on a 2-CPU + 2-GPU pool:
//!
//! * **uniform** — the homogeneous planner's equal-cost split (what a
//!   capability-blind rebalancer produces), and
//! * **heterogeneous** — `plan_rebalance_hetero`, which sizes each
//!   rank's Morton-curve chunk by its modeled speed.
//!
//! The figure of merit is the modeled aggregate MLUPS (total cells over
//! the slowest rank's wall time). The run also cross-checks the claim
//! the placement rests on: all three backends produce bitwise identical
//! PDFs, so moving a block between them changes cost, never results.

use trillium_bench::{bench_relaxation, emit_json, section, HarnessArgs};
use trillium_field::{PdfField, Shape, SoaPdfField};
use trillium_kernels::{BackendKind, Collision};
use trillium_lattice::D3Q19;
use trillium_machine::{DeviceSpec, MachineSpec};
use trillium_perfmodel::{GpuModel, KernelTier, TierModel};
use trillium_rebalance::{
    makespan, plan_rebalance_hetero, BackendTierTable, BlockRecord, RankPool,
};

/// Modeled MLUPS of each backend for one dense sweep of `cells` cells.
fn cost_table(cells_per_block: u64) -> BackendTierTable {
    let socket = MachineSpec::supermuc();
    let cores = socket.cores_per_socket;
    let mut t = BackendTierTable::new();
    // The portable SoA backend is the specialized tier: same layout and
    // arithmetic as the SIMD tier, no guaranteed vector issue.
    t.set(
        "portable",
        "specialized",
        TierModel::new(&socket, KernelTier::Specialized, true).mlups(cores),
    );
    t.set("avx2", "simd", TierModel::new(&socket, KernelTier::Simd, true).mlups(cores));
    // The workgroup backend models a GPU-class device: per-sweep launch
    // latency amortized over the block, bandwidth-bound at scale.
    let gpu = GpuModel::from_device(&DeviceSpec::hbm_class(), 19);
    t.set("workgroup", "simd", gpu.mlups(cells_per_block));
    t
}

/// Dense block set: `n³` blocks of `edge³` cells, scattered round-robin
/// over the pool (the capability-blind initial ownership).
fn dense_records(n: u32, edge: u64, ranks: u32) -> Vec<BlockRecord> {
    let cells = edge * edge * edge;
    let mut out = Vec::new();
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                let i = (z * n + y) * n + x;
                out.push(BlockRecord {
                    id: u64::from(i) + 1,
                    owner: i % ranks,
                    coords: [x, y, z],
                    level: 0,
                    // Cost in Mcells so that cost/MLUPS = seconds.
                    cost: cells as f64 / 1e6,
                    fluid_cells: cells,
                });
            }
        }
    }
    out
}

/// One sweep on every backend; returns true when all PDFs match bitwise.
fn backends_agree() -> bool {
    let rel = bench_relaxation();
    let shape = Shape::new(24, 24, 24, 1);
    let mut fields: Vec<SoaPdfField<D3Q19>> = Vec::new();
    for kind in BackendKind::ALL {
        let mut src = SoaPdfField::<D3Q19>::new(shape);
        let mut dst = SoaPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.02, 0.01, -0.01]);
        for (i, v) in src.data_mut().iter_mut().enumerate() {
            *v += 1e-5 * ((i % 101) as f64 - 50.0);
        }
        kind.dispatch().sweep_pull(Collision::Trt, &src, &mut dst, rel);
        fields.push(dst);
    }
    fields.iter().all(|f| f.data() == fields[0].data())
}

fn main() {
    let args = HarnessArgs::parse();
    let (n_blocks, edge) = if args.full { (6u32, 64u64) } else { (4u32, 32u64) };
    let cells_per_block = edge * edge * edge;

    section("Backend cost table (modeled)");
    let table = cost_table(cells_per_block);
    for row in table.rows() {
        println!("{:<12} {:<12} {:>10.1} MLUPS", row.backend, row.tier, row.mlups);
    }

    // 2 CPU sockets + 2 GPU-class devices.
    let pool_kinds: [(&str, &str); 4] =
        [("avx2", "simd"), ("avx2", "simd"), ("workgroup", "simd"), ("workgroup", "simd")];
    let pool = RankPool::from_assignments(&table, &pool_kinds);
    let records = dense_records(n_blocks, edge, pool.num_ranks());
    let total_cells = records.iter().map(|r| r.fluid_cells).sum::<u64>();

    // Uniform: the capability-blind equal-cost split (identical to the
    // homogeneous planner's view of this pool).
    let flat = RankPool::uniform(pool.num_ranks(), 1.0);
    let uniform = plan_rebalance_hetero(records.clone(), &flat, 1.0);
    let t_uniform = makespan(&uniform.records, &uniform.assignment, &pool);

    // Heterogeneous: chunks sized by modeled speed.
    let hetero = plan_rebalance_hetero(records, &pool, 1.05);
    let t_hetero = makespan(&hetero.records, &hetero.assignment, &pool);

    let mlups_uniform = total_cells as f64 / 1e6 / t_uniform;
    let mlups_hetero = total_cells as f64 / 1e6 / t_hetero;
    let speedup = mlups_hetero / mlups_uniform;

    section("Placement on a 2×CPU + 2×GPU pool");
    println!(
        "{} blocks of {}³ cells ({:.1} Mcells total)",
        n_blocks.pow(3),
        edge,
        total_cells as f64 / 1e6
    );
    println!("{:<14} {:>14} {:>14}", "placement", "makespan [ms]", "agg MLUPS");
    println!("{:<14} {:>14.3} {:>14.1}", "uniform", t_uniform * 1e3, mlups_uniform);
    println!("{:<14} {:>14.3} {:>14.1}", "heterogeneous", t_hetero * 1e3, mlups_hetero);
    println!("speedup: {speedup:.2}x  (migrations: {})", hetero.migrations.len());

    section("Backend bitwise equivalence (one real sweep per backend)");
    let bitwise = backends_agree();
    println!("portable == avx2 == workgroup: {bitwise}");

    assert!(speedup >= 1.0, "heterogeneous placement must not lose to uniform (got {speedup:.3}x)");
    assert!(bitwise, "backends must produce bitwise identical PDFs");

    if args.json {
        emit_json(
            "ablation_backends",
            serde_json::json!({
                "cells_per_block": cells_per_block,
                "blocks": n_blocks.pow(3),
                "pool": pool_kinds.iter().map(|(b, _)| *b).collect::<Vec<_>>(),
                "table": table.rows().iter().map(|r| {
                    serde_json::json!({"backend": r.backend, "tier": r.tier, "mlups": r.mlups})
                }).collect::<Vec<_>>(),
                "uniform_mlups": mlups_uniform,
                "hetero_mlups": mlups_hetero,
                "speedup": speedup,
                "migrations": hetero.migrations.len(),
                "bitwise_equal": bitwise,
            }),
        );
    }
}
