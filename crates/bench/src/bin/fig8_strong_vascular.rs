//! Fig 8 — strong scaling on the synthetic coronary tree at two fixed
//! resolutions (the paper's 0.1 mm / 2.1 M fluid cells and 0.05 mm /
//! 16.9 M fluid cells), sweeping block sizes per core count and reporting
//! the best MFLUPS/core and time steps per second.

use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_machine::MachineSpec;
use trillium_scaling::fig7::Fig7Config;
use trillium_scaling::fig8::{dx_for_fluid_cells, fig8_series, paper_edges};
use trillium_scaling::paper_tree;

fn main() {
    let args = HarnessArgs::parse();
    let tree = paper_tree();
    let targets: Vec<(&str, f64)> = if args.full {
        vec![("0.1 mm analogue (2.1 M fluid cells)", 2.1e6), ("0.05 mm analogue (16.9 M)", 16.9e6)]
    } else {
        vec![("coarse (0.4 M fluid cells)", 4e5), ("fine (3.2 M fluid cells)", 3.2e6)]
    };
    let edges = paper_edges();
    let mut all = Vec::new();

    for (label, fluid) in &targets {
        let dx = dx_for_fluid_cells(&tree, *fluid, 0.2);
        for machine in [MachineSpec::supermuc(), MachineSpec::juqueen()] {
            let cfg = Fig7Config {
                threads: 4,
                cores_per_proc: if machine.name == "SuperMUC" { 4 } else { 1 },
                samples: 4,
                coverage_sample_blocks: 5,
                block_edge: 0,
            };
            let range = if machine.name == "SuperMUC" { (4u32, 15) } else { (9u32, 18) };
            section(&format!("Fig 8: strong scaling, {label}, {}", machine.name));
            println!(
                "{:<10} {:>14} {:>14} {:>10} {:>12}",
                "cores", "MFLUPS/core", "steps/s", "edge", "blocks/proc"
            );
            let rows = fig8_series(&tree, &machine, &cfg, dx, range, &edges);
            for r in &rows {
                println!(
                    "{:<10} {:>14.3} {:>14.1} {:>10} {:>12.1}",
                    r.cores, r.mflups_per_core, r.timesteps_per_s, r.best_edge, r.blocks_per_proc
                );
            }
            all.extend(rows);
        }
    }
    println!();
    println!("paper shape: steps/s rises with cores; SuperMUC sustains efficiency to");
    println!("larger scales than JUQUEEN (framework overhead on slow in-order cores);");
    println!("optimal block size shrinks with the core count.");
    if args.json {
        emit_json("fig8_strong_vascular", serde_json::json!(all));
    }
}
