//! Soak harness for the multi-tenant job service.
//!
//! Drives a few hundred small simulation jobs — a mix of geometry
//! families, kernels, schedules, priorities, and per-job fault plans —
//! through one `trillium-jobs` service sharing a single rank pool, and
//! *asserts* the service's contract instead of merely reporting it:
//!
//! * **isolation** — every job not scheduled to die finishes bitwise
//!   identical to a solo run of the same spec; jobs scheduled to die
//!   (fail-stop crash with a zero recovery budget) die a typed death
//!   without touching any neighbor;
//! * **completion** — every submitted job comes back, completed or
//!   failed; nothing is lost or stranded;
//! * **bounded queue latency** — the queue fully drains, and no job's
//!   measured queue latency exceeds the soak's own wall time.
//!
//! `--jobs N` scales the load (default 200, the ISSUE's soak floor;
//! CI runs a smaller smoke count). `--json` emits the machine-readable
//! report; the process exits nonzero on any violation, so CI can gate
//! on it directly.

use serde_json::{json, Value};
use std::collections::HashMap;
use std::sync::mpsc::channel;
use std::time::Instant;
use trillium_bench::{emit_json, section, HarnessArgs};
use trillium_core::driver::{run_distributed_with, DriverConfig};
use trillium_jobs::{JobResult, JobService, JobSpec, Schedule, ServiceConfig};

/// Reads `--flag value` from the raw argument list.
fn arg_value(name: &str) -> Option<String> {
    let args: Vec<String> = std::env::args().collect();
    args.iter().position(|a| a == name).and_then(|i| args.get(i + 1).cloned())
}

/// Job templates the soak cycles through. `dies` marks the template
/// whose jobs are *supposed* to fail (crash + zero recovery budget).
struct Template {
    key: &'static str,
    doc: &'static str,
    dies: bool,
}

const TEMPLATES: &[Template] = &[
    Template {
        key: "cavity-sync",
        doc: r#"{"name": "t", "family": "cavity", "cells": 16, "blocks": 2,
                 "steps": 6, "ranks": 2}"#,
        dies: false,
    },
    Template {
        key: "cavity-overlap-inplace",
        doc: r#"{"name": "t", "family": "cavity", "cells": 16, "blocks": 2,
                 "steps": 6, "ranks": 2, "kernel": "inplace",
                 "schedule": "overlapped"}"#,
        dies: false,
    },
    Template {
        key: "channel-sync",
        doc: r#"{"name": "t", "family": "channel", "cells": 8, "blocks": 1,
                 "steps": 6, "ranks": 2}"#,
        dies: false,
    },
    Template {
        key: "cavity-solo-rank",
        doc: r#"{"name": "t", "family": "cavity", "cells": 12, "blocks": 1,
                 "steps": 6, "ranks": 1}"#,
        dies: false,
    },
    Template {
        key: "cavity-crash-recover",
        doc: r#"{"name": "t", "family": "cavity", "cells": 16, "blocks": 2,
                 "steps": 6, "ranks": 2, "schedule": "resilient",
                 "fault": {"seed": 11, "crash_rank": 1, "crash_step": 3,
                           "recover": true}}"#,
        dies: false,
    },
    Template {
        key: "cavity-crash-doomed",
        doc: r#"{"name": "t", "family": "cavity", "cells": 16, "blocks": 2,
                 "steps": 6, "ranks": 2, "schedule": "resilient",
                 "fault": {"seed": 11, "crash_rank": 1, "crash_step": 3,
                           "recover": false}}"#,
        dies: true,
    },
];

fn template_spec(t: &Template, job_index: usize) -> JobSpec {
    let mut spec = JobSpec::parse(t.doc).expect("soak template parses");
    spec.name = format!("{}-{job_index}", t.key);
    // Spread priorities so the scheduler actually reorders the queue.
    spec.priority = (job_index % 5) as i64;
    spec
}

fn main() {
    let args = HarnessArgs::parse();
    let jobs: usize = arg_value("--jobs").and_then(|v| v.parse().ok()).unwrap_or(200);

    section("solo baselines");
    // One bitwise reference per template, from the plain (or overlapped)
    // driver with no service involved. Resilient-recovering jobs must
    // match the *unfaulted* baseline — replay is deterministic.
    let mut baseline: HashMap<&'static str, Vec<(u64, Vec<f64>)>> = HashMap::new();
    for t in TEMPLATES {
        if t.dies {
            continue;
        }
        let spec = template_spec(t, 0);
        let solo = run_distributed_with(
            &spec.to_scenario(),
            spec.ranks,
            spec.threads,
            spec.steps,
            &[],
            DriverConfig {
                collect_pdfs: true,
                overlap: spec.schedule == Schedule::Overlapped,
                ..DriverConfig::default()
            },
        );
        println!("  {:<24} {} cells, {} steps", t.key, spec.total_cells(), spec.steps);
        baseline.insert(t.key, solo.pdf_dump());
    }

    section(&format!("soak: {jobs} jobs through one shared pool"));
    let (tx, rx) = channel();
    let mut svc = JobService::new(ServiceConfig {
        lanes: 4,
        lane_width: 2,
        max_parked: jobs.max(16),
        batch: 8,
        ..ServiceConfig::default()
    })
    .with_progress(tx);

    let t0 = Instant::now();
    let mut expected_deaths = 0usize;
    for i in 0..jobs {
        let t = &TEMPLATES[i % TEMPLATES.len()];
        if t.dies {
            expected_deaths += 1;
        }
        svc.submit(template_spec(t, i)).expect("soak jobs are admissible");
    }
    let mut outcomes = svc.run_to_completion();
    let wall_seconds = t0.elapsed().as_secs_f64();
    drop(svc);
    outcomes.sort_by_key(|o| o.id);

    // ---- verification ---------------------------------------------------
    let mut isolation_violations = 0usize;
    let mut unrecovered_panics = 0usize;
    let mut unexpected_failures = 0usize;
    let mut expected_failures = 0usize;
    let mut completed = 0usize;
    let mut recoveries_total = 0u64;
    let mut max_queue = 0f64;
    let mut queue_sum = 0f64;
    for o in &outcomes {
        let template_key = TEMPLATES
            .iter()
            .map(|t| t.key)
            .find(|k| o.name.starts_with(k))
            .expect("outcome names a known template");
        let dies = TEMPLATES.iter().find(|t| t.key == template_key).unwrap().dies;
        max_queue = max_queue.max(o.queue_seconds);
        queue_sum += o.queue_seconds;
        match &o.result {
            JobResult::Completed { run, recoveries } => {
                completed += 1;
                recoveries_total += u64::from(*recoveries);
                if dies {
                    // A doomed job completing means the fault plan did
                    // not fire — the harness lost its probe.
                    unexpected_failures += 1;
                    println!("  VIOLATION: doomed job {} completed", o.name);
                } else if run.pdf_dump() != baseline[template_key] {
                    isolation_violations += 1;
                    println!("  VIOLATION: job {} diverged from its solo baseline", o.name);
                }
            }
            JobResult::Failed { error } => {
                if dies {
                    expected_failures += 1;
                } else {
                    unexpected_failures += 1;
                    if error.contains("panicked") {
                        unrecovered_panics += 1;
                    }
                    println!("  VIOLATION: healthy job {} failed: {error}", o.name);
                }
            }
        }
    }
    let lost = jobs - outcomes.len();
    let mean_queue = queue_sum / outcomes.len().max(1) as f64;

    // Progress stream: every event must carry the shared envelope.
    let events: Vec<Value> = rx.try_iter().collect();
    let bad_envelopes = events
        .iter()
        .filter(|e| {
            e.get("schema").and_then(Value::as_str) != Some(trillium_jobs::JOBS_SCHEMA)
                || e.get("bin").and_then(Value::as_str) != Some("trillium-jobs")
        })
        .count();
    let finished_events = events
        .iter()
        .filter(|e| e.get("event").and_then(Value::as_str) == Some("finished"))
        .count();

    println!(
        "  {completed}/{jobs} completed, {expected_failures} died as scheduled, \
         {unexpected_failures} unexpected failures"
    );
    println!(
        "  queue latency: mean {:.3}s, max {:.3}s over {:.1}s wall",
        mean_queue, max_queue, wall_seconds
    );
    println!("  {} recoveries absorbed, {} progress events", recoveries_total, finished_events);

    // Bounded latency: the queue fully drained and nobody waited longer
    // than the soak itself ran.
    let latency_bounded = lost == 0 && max_queue <= wall_seconds + 1.0;
    let ok = isolation_violations == 0
        && unrecovered_panics == 0
        && unexpected_failures == 0
        && expected_failures == expected_deaths
        && bad_envelopes == 0
        && finished_events == jobs
        && latency_bounded;

    if ok {
        println!("  soak passed: every job isolated, accounted for, and on time");
    }

    if args.json {
        emit_json(
            "ablation_jobs",
            json!({
                "jobs": jobs,
                "completed": completed,
                "expected_failures": expected_failures,
                "unexpected_failures": unexpected_failures,
                "isolation_violations": isolation_violations,
                "unrecovered_panics": unrecovered_panics,
                "lost": lost,
                "bad_envelopes": bad_envelopes,
                "finished_events": finished_events,
                "recoveries": recoveries_total,
                "queue_seconds_mean": mean_queue,
                "queue_seconds_max": max_queue,
                "wall_seconds": wall_seconds,
                "latency_bounded": latency_bounded,
                "ok": ok
            }),
        );
    }

    if !ok {
        eprintln!("soak FAILED: isolation or completion contract violated");
        std::process::exit(1);
    }
}
