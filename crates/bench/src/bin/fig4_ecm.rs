//! Fig 4 — ECM model of the TRT kernel at 2.7 GHz and 1.6 GHz, plus the
//! host-measured saturation point for comparison.

use trillium_bench::{bench_relaxation, emit_json, measure_mlups, section, HarnessArgs};
use trillium_kernels as kernels;
use trillium_scaling::fig4::{fig4_series, performance_retention};

fn main() {
    let args = HarnessArgs::parse();
    section("Fig 4: ECM model, SuperMUC socket");
    let rows = fig4_series();
    println!("{:<8} {:>12} {:>12}", "cores", "2.7 GHz", "1.6 GHz");
    for c in 1..=8u32 {
        let at = |f: f64| rows.iter().find(|r| r.clock_ghz == f && r.cores == c).unwrap().mlups;
        println!("{:<8} {:>12.1} {:>12.1}", c, at(2.7), at(1.6));
    }
    println!();
    println!(
        "performance retention at 1.6 GHz: {:.1} %  (paper: 93 %, at 25 % less energy)",
        100.0 * performance_retention(1.6, 2.7)
    );

    // The in-place (AA-pattern) traffic term: same in-core work, 38
    // instead of 57 cache lines per unit. The model predicts the
    // update-scheme speedup before fig3 measures it.
    let ecm = trillium_perfmodel::EcmModel::supermuc_trt_simd(2.7);
    println!();
    println!(
        "in-place traffic term: {} -> {} cachelines/unit, predicted speedup \
         {:.2}x (1 core) / {:.2}x (saturated socket)",
        trillium_perfmodel::CACHELINES_PER_UNIT,
        trillium_perfmodel::CACHELINES_PER_UNIT_INPLACE,
        ecm.inplace_speedup(1),
        ecm.inplace_speedup(8),
    );

    // Host point: the measured AVX TRT kernel (single core, fixed clock).
    let (src, mut dst) = trillium_bench::bench_fields(if args.full { 128 } else { 64 });
    let rel = bench_relaxation();
    let host = measure_mlups(|| kernels::avx::stream_collide_trt(&src, &mut dst, rel), 4);
    println!("host AVX TRT kernel (1 core, host clock): {host:.1} MLUPS");

    if args.json {
        emit_json(
            "fig4_ecm",
            serde_json::json!({
                "model": rows,
                "retention": performance_retention(1.6, 2.7),
                "host_mlups": host,
                "inplace_predicted_speedup_core": ecm.inplace_speedup(1),
                "inplace_predicted_speedup_saturated": ecm.inplace_speedup(8),
            }),
        );
    }
}
