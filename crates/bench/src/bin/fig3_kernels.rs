//! Fig 3 — single-node kernel-ladder comparison.
//!
//! Prints (a) the model series for a SuperMUC socket and a JUQUEEN node
//! (calibrated tier models), and (b) *measured* MLUPS of the real Rust
//! kernels of this repository on the host, for all three tiers × SRT/TRT.
//! The paper's qualitative claims to check: generic < specialized < SIMD,
//! SIMD SRT ≈ SIMD TRT, and only the SIMD tier approaching the host's
//! bandwidth roofline.

use trillium_bench::{bench_relaxation, emit_json, measure_mlups, section, HarnessArgs};
use trillium_field::{AosPdfField, PdfField, Shape};
use trillium_kernels as kernels;
use trillium_lattice::{Relaxation, D3Q19};
use trillium_machine::{measure_lbm_bandwidth, MachineSpec};
use trillium_perfmodel::{roofline_mlups, EcmModel};
use trillium_scaling::fig3::fig3_series;

fn main() {
    let args = HarnessArgs::parse();
    let n = if args.full { 128 } else { 64 };
    let reps = if args.full { 10 } else { 4 };

    section("Fig 3 (model): SuperMUC socket");
    let sm = fig3_series(&MachineSpec::supermuc());
    print_model(&sm);
    section("Fig 3 (model): JUQUEEN node");
    let jq = fig3_series(&MachineSpec::juqueen());
    print_model(&jq);

    section(&format!("Fig 3 (measured on host): {n}^3 cells, single core"));
    let shape = Shape::cube(n);
    let rel_trt = bench_relaxation();
    let rel_srt = Relaxation::srt_from_tau(rel_trt.tau());

    // Tier 1: generic textbook kernel (AoS).
    let mut aos_src = AosPdfField::<D3Q19>::new(shape);
    let mut aos_dst = AosPdfField::<D3Q19>::new(shape);
    aos_src.fill_equilibrium(1.0, [0.02, 0.01, -0.01]);
    let gen_srt = measure_mlups(
        || kernels::generic::stream_collide_srt(&aos_src, &mut aos_dst, rel_srt),
        reps,
    );
    let gen_trt = measure_mlups(
        || kernels::generic::stream_collide_trt(&aos_src, &mut aos_dst, rel_trt),
        reps,
    );

    // Tier 2: D3Q19-specialized kernel (AoS).
    let spec_srt =
        measure_mlups(|| kernels::d3q19::stream_collide_srt(&aos_src, &mut aos_dst, rel_srt), reps);
    let spec_trt =
        measure_mlups(|| kernels::d3q19::stream_collide_trt(&aos_src, &mut aos_dst, rel_trt), reps);

    // Tier 3: SoA split-loop (portable SIMD) and AVX2 intrinsics.
    let (soa_src, mut soa_dst) = trillium_bench::bench_fields(n);
    let soa_srt =
        measure_mlups(|| kernels::soa::stream_collide_srt(&soa_src, &mut soa_dst, rel_srt), reps);
    let soa_trt =
        measure_mlups(|| kernels::soa::stream_collide_trt(&soa_src, &mut soa_dst, rel_trt), reps);
    let avx_trt =
        measure_mlups(|| kernels::avx::stream_collide_trt(&soa_src, &mut soa_dst, rel_trt), reps);
    // The tier the "avx" entry point actually executed: without AVX2+FMA
    // it silently runs the SoA fallback, and the series must say so
    // instead of crediting intrinsics that never ran.
    let resolved = kernels::Tier::Avx.resolve();

    // Tier 4: in-place AA-pattern update, single buffer. The kernels
    // never flip the storage parity themselves (the block driver owns
    // that), so the bench alternates it to exercise both sweep kinds.
    let (mut aa, _) = trillium_bench::bench_fields(n);
    let inplace_srt = measure_mlups(
        || {
            let s = kernels::inplace::stream_collide_srt(&mut aa, rel_srt);
            let p = aa.parity();
            aa.set_parity(!p);
            s
        },
        reps,
    );
    let inplace_trt = measure_mlups(
        || {
            let s = kernels::inplace::stream_collide_trt(&mut aa, rel_trt);
            let p = aa.parity();
            aa.set_parity(!p);
            s
        },
        reps,
    );

    println!("{:<28} {:>10} {:>10}", "kernel", "SRT", "TRT");
    println!("{:<28} {:>10.1} {:>10.1}", "Generic (AoS)", gen_srt, gen_trt);
    println!("{:<28} {:>10.1} {:>10.1}", "D3Q19 specialized (AoS)", spec_srt, spec_trt);
    println!("{:<28} {:>10.1} {:>10.1}", "SoA split-loop", soa_srt, soa_trt);
    println!(
        "{:<28} {:>10} {:>10.1}  (avx2+fma available: {}, ran as: {})",
        "AVX2 intrinsics",
        "-",
        avx_trt,
        kernels::avx::available(),
        resolved.label()
    );
    println!("{:<28} {:>10.1} {:>10.1}", "In-place AA (single buffer)", inplace_srt, inplace_trt);

    // ECM prediction for the in-place tier: the traffic term drops from
    // 57 to 38 cache lines per unit, so the model predicts the speedup
    // before the measurement confirms it.
    let ecm = EcmModel::supermuc_trt_simd(2.7);
    let predicted_core = ecm.inplace_speedup(1);
    let predicted_sat = ecm.inplace_speedup(16);
    let measured_speedup = inplace_trt / soa_trt;
    println!(
        "in-place/pull TRT speedup: measured {measured_speedup:.2}x vs SoA pull | \
         ECM predicts {predicted_core:.2}x single-core, {predicted_sat:.2}x saturated \
         (57 -> 38 cachelines/unit)"
    );

    // Host roofline from the measured bandwidths (the roofline bound uses
    // the best bandwidth the memory interface delivers).
    let bw_lbm = measure_lbm_bandwidth(1 << 17, 5);
    let bw_copy = trillium_machine::measure_copy_bandwidth(16 << 20, 5);
    let bw = bw_lbm.max(bw_copy);
    let roof = roofline_mlups(bw, 19);
    println!();
    println!(
        "host bandwidth: copy {bw_copy:.1} GiB/s, LBM-pattern {bw_lbm:.1} GiB/s -> roofline {roof:.1} MLUPS"
    );
    println!("SIMD tier reaches {:.0} % of the host roofline", 100.0 * avx_trt.max(soa_trt) / roof);

    if args.json {
        let payload = serde_json::json!({
            "model_supermuc": sm,
            "model_juqueen": jq,
            "host": {
                "generic": {"srt": gen_srt, "trt": gen_trt},
                "d3q19": {"srt": spec_srt, "trt": spec_trt},
                "soa": {"srt": soa_srt, "trt": soa_trt},
                "avx": {
                    "trt": avx_trt,
                    "avx_available": kernels::avx::available(),
                    "resolved_tier": resolved.label(),
                },
                "inplace": {
                    "srt": inplace_srt,
                    "trt": inplace_trt,
                    "measured_speedup_vs_soa_trt": measured_speedup,
                    "ecm_predicted_speedup_core": predicted_core,
                    "ecm_predicted_speedup_saturated": predicted_sat,
                },
                "bandwidth_gib": bw,
                "roofline_mlups": roof,
            },
        });
        emit_json("fig3_kernels", payload);
    }
}

fn print_model(rows: &[trillium_scaling::fig3::Fig3Row]) {
    let max_cores = rows.iter().map(|r| r.cores).max().unwrap();
    println!(
        "{:<10} {:>6} {:>6} {:>6} {:>6} {:>6} {:>6}",
        "cores", "genS", "genT", "d19S", "d19T", "simdS", "simdT"
    );
    for c in 1..=max_cores {
        let at = |tier: &str, coll: &str| {
            rows.iter()
                .find(|r| r.cores == c && r.tier == tier && r.collision == coll)
                .map(|r| r.mlups)
                .unwrap_or(0.0)
        };
        println!(
            "{:<10} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1} {:>6.1}",
            c,
            at("Generic", "SRT"),
            at("Generic", "TRT"),
            at("D3Q19", "SRT"),
            at("D3Q19", "TRT"),
            at("SIMD", "SRT"),
            at("SIMD", "TRT"),
        );
    }
}
