//! Criterion benches of the communication layer: ghost pack/unpack and a
//! full distributed cavity step.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use trillium_comm::{pack_face, unpack_face};
use trillium_core::prelude::*;
use trillium_field::{PdfField, Shape, SoaPdfField};
use trillium_lattice::D3Q19;

fn bench_pack_unpack(c: &mut Criterion) {
    let shape = Shape::cube(64);
    let mut f = SoaPdfField::<D3Q19>::new(shape);
    f.fill_equilibrium(1.0, [0.01, 0.0, 0.0]);
    let face_bytes = (64 * 64 * 5 * 8) as u64;

    let mut g = c.benchmark_group("ghost");
    g.throughput(Throughput::Bytes(face_bytes));
    g.bench_function("pack_face_64", |b| {
        let mut buf = Vec::new();
        b.iter(|| {
            buf.clear();
            pack_face::<D3Q19, _>(&f, [1, 0, 0], &mut buf);
            buf.len()
        })
    });
    let mut buf = Vec::new();
    pack_face::<D3Q19, _>(&f, [1, 0, 0], &mut buf);
    g.bench_function("unpack_face_64", |b| {
        b.iter(|| unpack_face::<D3Q19, _>(&mut f, [-1, 0, 0], &buf))
    });
    g.finish();
}

fn bench_distributed_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("distributed");
    g.sample_size(10);
    g.bench_function("cavity_32c_8ranks_5steps", |b| {
        let scenario = Scenario::lid_driven_cavity(32, 2, 0.05, 0.05);
        b.iter(|| run_distributed(&scenario, 8, 1, 5))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_pack_unpack, bench_distributed_step
}
criterion_main!(benches);
