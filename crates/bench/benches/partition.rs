//! Criterion benches of the multilevel graph partitioner (METIS
//! substitute) on block-graph-shaped inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use trillium_partition::{partition_kway, Graph, PartitionOptions};

fn grid_graph(n: usize) -> Graph {
    let idx = |x: usize, y: usize, z: usize| ((z * n + y) * n + x) as u32;
    let mut edges = Vec::new();
    for z in 0..n {
        for y in 0..n {
            for x in 0..n {
                if x + 1 < n {
                    edges.push((idx(x, y, z), idx(x + 1, y, z), 5.0));
                }
                if y + 1 < n {
                    edges.push((idx(x, y, z), idx(x, y + 1, z), 5.0));
                }
                if z + 1 < n {
                    edges.push((idx(x, y, z), idx(x, y, z + 1), 5.0));
                }
            }
        }
    }
    Graph::from_edges(n * n * n, &edges, None)
}

fn bench_partition(c: &mut Criterion) {
    let mut g = c.benchmark_group("partition");
    g.sample_size(10);
    for n in [8usize, 12, 16] {
        let graph = grid_graph(n);
        g.bench_with_input(BenchmarkId::new("kway16_grid", n), &graph, |b, graph| {
            b.iter(|| partition_kway(graph, 16, &PartitionOptions::default()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_partition);
criterion_main!(benches);
