//! Criterion benches of the geometry pipeline: signed-distance queries
//! (octree-accelerated mesh vs analytic tree), block classification and
//! voxelization.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use trillium_field::Shape;
use trillium_geometry::vec3::vec3;
use trillium_geometry::voxelize::{classify_block, voxelize_block, VoxelizeConfig};
use trillium_geometry::{Aabb, MeshSdf, SignedDistance, TriMesh, VascularTree, VascularTreeParams};

fn tree() -> VascularTree {
    VascularTree::generate(&VascularTreeParams { generations: 8, ..Default::default() })
}

fn bench_sdf(c: &mut Criterion) {
    let t = tree();
    let bb = t.bounding_box();
    let queries: Vec<_> = (0..256)
        .map(|i| {
            let f = i as f64 / 256.0;
            bb.min + (bb.max - bb.min) * f
        })
        .collect();

    let mut g = c.benchmark_group("sdf");
    g.throughput(Throughput::Elements(queries.len() as u64));
    g.bench_function("tree_signed_distance", |b| {
        b.iter(|| queries.iter().map(|&p| t.signed_distance(p)).sum::<f64>())
    });

    let mesh_sdf = MeshSdf::new(TriMesh::make_sphere(vec3(0.0, 0.0, 0.0), 1.0, 32, 64));
    let sphere_queries: Vec<_> = (0..256)
        .map(|i| vec3((i % 16) as f64 * 0.2 - 1.6, (i / 16) as f64 * 0.2 - 1.6, 0.3))
        .collect();
    g.bench_function("mesh_signed_distance", |b| {
        b.iter(|| sphere_queries.iter().map(|&p| mesh_sdf.signed_distance(p)).sum::<f64>())
    });
    g.finish();
}

fn bench_voxelize(c: &mut Criterion) {
    let t = tree();
    let bb = t.bounding_box();
    let center = bb.center();
    let block = Aabb::new(center - vec3(2.0, 2.0, 2.0), center + vec3(2.0, 2.0, 2.0));

    let mut g = c.benchmark_group("voxelize");
    g.bench_function("classify_block", |b| b.iter(|| classify_block(&t, &block, [16, 16, 16])));
    let shape = Shape::cube(24);
    let dx = 4.0 / 24.0;
    g.bench_function("voxelize_block_24", |b| {
        b.iter(|| voxelize_block(&t, block.min, dx, shape, &VoxelizeConfig::default()))
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_sdf, bench_voxelize
}
criterion_main!(benches);
