//! Criterion benches of the kernel optimization ladder (Fig 3's measured
//! analogue): generic vs specialized vs SoA vs AVX, SRT and TRT, plus the
//! sparse strategies of §4.3 on a half-filled block.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use trillium_field::{
    AosPdfField, CellFlags, FlagField, FlagOps, FluidCellList, PdfField, RowIntervals, Shape,
    SoaPdfField,
};
use trillium_kernels as kernels;
use trillium_lattice::{Relaxation, D3Q19, MAGIC_TRT};

const N: usize = 48;

fn aos_fields() -> (AosPdfField<D3Q19>, AosPdfField<D3Q19>) {
    let shape = Shape::cube(N);
    let mut src = AosPdfField::<D3Q19>::new(shape);
    let dst = AosPdfField::<D3Q19>::new(shape);
    src.fill_equilibrium(1.0, [0.02, 0.01, -0.01]);
    (src, dst)
}

fn soa_fields() -> (SoaPdfField<D3Q19>, SoaPdfField<D3Q19>) {
    let shape = Shape::cube(N);
    let mut src = SoaPdfField::<D3Q19>::new(shape);
    let dst = SoaPdfField::<D3Q19>::new(shape);
    src.fill_equilibrium(1.0, [0.02, 0.01, -0.01]);
    (src, dst)
}

fn bench_ladder(c: &mut Criterion) {
    let rel = Relaxation::trt_from_tau(0.8, MAGIC_TRT);
    let rel_srt = Relaxation::srt_from_tau(0.8);
    let cells = (N * N * N) as u64;

    let mut g = c.benchmark_group("ladder");
    g.throughput(Throughput::Elements(cells));

    let (asrc, mut adst) = aos_fields();
    g.bench_function(BenchmarkId::new("generic", "srt"), |b| {
        b.iter(|| kernels::generic::stream_collide_srt(&asrc, &mut adst, rel_srt))
    });
    g.bench_function(BenchmarkId::new("generic", "trt"), |b| {
        b.iter(|| kernels::generic::stream_collide_trt(&asrc, &mut adst, rel))
    });
    g.bench_function(BenchmarkId::new("d3q19", "srt"), |b| {
        b.iter(|| kernels::d3q19::stream_collide_srt(&asrc, &mut adst, rel_srt))
    });
    g.bench_function(BenchmarkId::new("d3q19", "trt"), |b| {
        b.iter(|| kernels::d3q19::stream_collide_trt(&asrc, &mut adst, rel))
    });

    let (ssrc, mut sdst) = soa_fields();
    g.bench_function(BenchmarkId::new("soa", "srt"), |b| {
        b.iter(|| kernels::soa::stream_collide_srt(&ssrc, &mut sdst, rel_srt))
    });
    g.bench_function(BenchmarkId::new("soa", "trt"), |b| {
        b.iter(|| kernels::soa::stream_collide_trt(&ssrc, &mut sdst, rel))
    });
    g.bench_function(BenchmarkId::new("avx", "trt"), |b| {
        b.iter(|| kernels::avx::stream_collide_trt(&ssrc, &mut sdst, rel))
    });

    // In-place AA-pattern tier: one buffer, parity alternated per sweep
    // (the kernels themselves never flip it).
    let (mut aa, _) = soa_fields();
    g.bench_function(BenchmarkId::new("inplace", "srt"), |b| {
        b.iter(|| {
            let s = kernels::inplace::stream_collide_srt(&mut aa, rel_srt);
            let p = aa.parity();
            aa.set_parity(!p);
            s
        })
    });
    g.bench_function(BenchmarkId::new("inplace", "trt"), |b| {
        b.iter(|| {
            let s = kernels::inplace::stream_collide_trt(&mut aa, rel);
            let p = aa.parity();
            aa.set_parity(!p);
            s
        })
    });
    g.finish();
}

/// A block whose lower half is fluid: the §4.3 sparse-strategy ablation.
fn half_filled_flags() -> FlagField {
    let shape = Shape::cube(N);
    let mut flags = FlagField::new(shape);
    for (x, y, z) in shape.interior().iter() {
        if z < (N / 2) as i32 {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
    }
    flags
}

fn bench_sparse(c: &mut Criterion) {
    let rel = Relaxation::trt_from_tau(0.8, MAGIC_TRT);
    let flags = half_filled_flags();
    let fluid = flags.count_fluid() as u64;
    let (ssrc, mut sdst) = soa_fields();
    let list = FluidCellList::build(&flags);
    let intervals = RowIntervals::build(&flags);

    let mut g = c.benchmark_group("sparse");
    g.throughput(Throughput::Elements(fluid));
    g.bench_function("conditional", |b| {
        b.iter(|| kernels::sparse::stream_collide_trt_conditional(&ssrc, &mut sdst, &flags, rel))
    });
    g.bench_function("cell_list", |b| {
        b.iter(|| kernels::sparse::stream_collide_trt_cell_list(&ssrc, &mut sdst, &list, rel))
    });
    g.bench_function("row_intervals", |b| {
        b.iter(|| {
            kernels::sparse::stream_collide_trt_row_intervals(&ssrc, &mut sdst, &intervals, rel)
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_ladder, bench_sparse
}
criterion_main!(benches);
