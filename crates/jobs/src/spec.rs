//! Job specifications: what a client submits to the service.
//!
//! A spec is a JSON document (parsed through the offline `serde_json`
//! shim) naming a geometry family, its physics parameters, the schedule
//! to run it under, and output options — the same shape of config file
//! the `lattice-boltzmann-rs` line of codes uses, reduced to the
//! scenario families this framework ships. [`JobSpec::from_json`]
//! validates the document; [`JobSpec::to_scenario`] builds the runnable
//! [`Scenario`]; [`JobSpec::cost_estimate`] prices the job for
//! admission control using the roofline traffic model from
//! `trillium-perfmodel`.

use serde_json::Value;
use trillium_core::prelude::{BackendKind, Collision, KernelChoice, Scenario};
use trillium_perfmodel::bytes_per_lup;

/// Geometry families a job may request — the paper's two §4.2
/// benchmark scenarios plus the vortex-shedding validation flow.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GeometryFamily {
    /// Lid-driven cavity, `cells`³ on `blocks`³ blocks.
    Cavity,
    /// Channel flow around a cylindrical obstacle, `2·cells × cells ×
    /// cells` on `2·blocks × blocks × blocks` blocks.
    Channel,
    /// Von Kármán vortex street: cylinder in a spanwise-periodic channel,
    /// `2·cells × cells × cells` on `2·blocks × blocks × blocks` blocks.
    /// Requires the MRT collision family — at job resolutions SRT and TRT
    /// diverge from the impulsive start (the same rule the physics
    /// validation matrix encodes in `is_supported`, pinned equal to it by
    /// a bench-crate test).
    VonKarman,
}

/// Distributed schedule to run the job under.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Schedule {
    /// Plain synchronous ghost exchange.
    Sync,
    /// Communication-hiding overlapped schedule.
    Overlapped,
    /// Runtime load balancing (block migration between cohort ranks).
    Rebalanced,
    /// Checkpoint/rollback resilience; the only schedule that tolerates
    /// an injected fault plan.
    Resilient,
}

/// Deterministic fault plan attached to a job (resilient schedule
/// only: the other schedules have unbounded waits and would hang on a
/// lost message instead of degrading).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultSpec {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Fail-stop crash `(rank, step)` inside the job's cohort.
    pub crash: Option<(u32, u64)>,
    /// Whether the job is allowed to recover: `false` caps the recovery
    /// budget at zero, so the first rollback turns into a typed failure
    /// — the harness's "this job must die, and only this job" probe.
    pub recover: bool,
}

/// A validated simulation job.
#[derive(Clone, Debug)]
pub struct JobSpec {
    /// Client-chosen job name (reported back in every progress event).
    pub name: String,
    /// Geometry family.
    pub family: GeometryFamily,
    /// Base edge length in cells (see [`GeometryFamily`] for how each
    /// family scales it).
    pub cells: usize,
    /// Base block count per edge.
    pub blocks: usize,
    /// Lattice viscosity.
    pub viscosity: f64,
    /// Driving velocity (lid or inflow, family-dependent).
    pub velocity: f64,
    /// Kernel/update-scheme choice.
    pub kernel: KernelChoice,
    /// Collision operator.
    pub collision: Collision,
    /// Compute backend the cohort's sweeps dispatch through.
    pub backend: BackendKind,
    /// Time steps to run.
    pub steps: u64,
    /// Cohort width: ranks this job needs.
    pub ranks: u32,
    /// Worker threads per rank.
    pub threads: usize,
    /// Scheduling priority; higher dispatches first.
    pub priority: i64,
    /// Distributed schedule.
    pub schedule: Schedule,
    /// Optional fault plan (resilient schedule only).
    pub fault: Option<FaultSpec>,
    /// Skew the static block distribution (fraction of blocks forced
    /// onto rank 0) — gives the rebalanced schedule something to fix.
    pub skew: Option<f64>,
    /// Collect final PDFs for bitwise comparison against baselines.
    pub collect_pdfs: bool,
}

/// Validation failure for a submitted spec.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SpecError {
    /// The JSON document failed to parse.
    Parse(String),
    /// A required field is absent.
    Missing(&'static str),
    /// A field is present but out of range or of the wrong kind.
    Invalid(&'static str),
}

impl std::fmt::Display for SpecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpecError::Parse(e) => write!(f, "spec does not parse: {e}"),
            SpecError::Missing(k) => write!(f, "spec is missing required field `{k}`"),
            SpecError::Invalid(k) => write!(f, "spec field `{k}` is invalid"),
        }
    }
}

impl std::error::Error for SpecError {}

fn req_str<'a>(v: &'a Value, key: &'static str) -> Result<&'a str, SpecError> {
    v.get(key).ok_or(SpecError::Missing(key))?.as_str().ok_or(SpecError::Invalid(key))
}

fn opt_u64(v: &Value, key: &'static str, default: u64) -> Result<u64, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_u64().ok_or(SpecError::Invalid(key)),
    }
}

fn opt_f64(v: &Value, key: &'static str, default: f64) -> Result<f64, SpecError> {
    match v.get(key) {
        None => Ok(default),
        Some(x) => x.as_f64().ok_or(SpecError::Invalid(key)),
    }
}

impl JobSpec {
    /// Parses and validates a JSON job document. Only `name` and
    /// `family` are mandatory; everything else has a small-job default,
    /// so the minimal spec is `{"name": "x", "family": "cavity"}`.
    pub fn from_json(v: &Value) -> Result<JobSpec, SpecError> {
        let name = req_str(v, "name")?.to_string();
        let family = match req_str(v, "family")? {
            "cavity" => GeometryFamily::Cavity,
            "channel" => GeometryFamily::Channel,
            "von-karman" => GeometryFamily::VonKarman,
            _ => return Err(SpecError::Invalid("family")),
        };
        let kernel = match v.get("kernel").map(|k| k.as_str()) {
            None => KernelChoice::Auto,
            Some(Some("auto")) => KernelChoice::Auto,
            Some(Some("pull")) => KernelChoice::Pull,
            Some(Some("inplace")) => KernelChoice::InPlace,
            _ => return Err(SpecError::Invalid("kernel")),
        };
        let collision = match v.get("collision").map(|c| c.as_str()) {
            None => Collision::Trt,
            Some(Some("srt")) => Collision::Srt,
            Some(Some("trt")) => Collision::Trt,
            Some(Some("mrt")) => Collision::Mrt,
            Some(Some("mrt-les")) => Collision::MrtLes,
            _ => return Err(SpecError::Invalid("collision")),
        };
        let backend = match v.get("backend").map(|b| b.as_str()) {
            None => BackendKind::default(),
            Some(Some(s)) => BackendKind::parse(s).ok_or(SpecError::Invalid("backend"))?,
            _ => return Err(SpecError::Invalid("backend")),
        };
        let schedule = match v.get("schedule").map(|s| s.as_str()) {
            None => Schedule::Sync,
            Some(Some("sync")) => Schedule::Sync,
            Some(Some("overlapped")) => Schedule::Overlapped,
            Some(Some("rebalanced")) => Schedule::Rebalanced,
            Some(Some("resilient")) => Schedule::Resilient,
            _ => return Err(SpecError::Invalid("schedule")),
        };
        let fault = match v.get("fault") {
            None => None,
            Some(f) => {
                let seed = opt_u64(f, "seed", 1)?;
                let crash = match (f.get("crash_rank"), f.get("crash_step")) {
                    (None, None) => None,
                    (Some(r), Some(s)) => Some((
                        r.as_u64().ok_or(SpecError::Invalid("fault.crash_rank"))? as u32,
                        s.as_u64().ok_or(SpecError::Invalid("fault.crash_step"))?,
                    )),
                    _ => return Err(SpecError::Invalid("fault")),
                };
                let recover = match f.get("recover") {
                    None => true,
                    Some(b) => b.as_bool().ok_or(SpecError::Invalid("fault.recover"))?,
                };
                Some(FaultSpec { seed, crash, recover })
            }
        };
        let skew = match v.get("skew") {
            None => None,
            Some(s) => Some(s.as_f64().ok_or(SpecError::Invalid("skew"))?),
        };
        let spec = JobSpec {
            name,
            family,
            cells: opt_u64(v, "cells", 16)? as usize,
            blocks: opt_u64(v, "blocks", 2)? as usize,
            viscosity: opt_f64(v, "viscosity", 0.05)?,
            velocity: opt_f64(v, "velocity", 0.08)?,
            kernel,
            collision,
            backend,
            steps: opt_u64(v, "steps", 10)?,
            ranks: opt_u64(v, "ranks", 2)? as u32,
            threads: opt_u64(v, "threads", 1)? as usize,
            priority: v
                .get("priority")
                .map_or(Ok(0), |p| p.as_i64().ok_or(SpecError::Invalid("priority")))?,
            schedule,
            fault,
            skew,
            collect_pdfs: match v.get("collect_pdfs") {
                None => true,
                Some(b) => b.as_bool().ok_or(SpecError::Invalid("collect_pdfs"))?,
            },
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Parses a JSON string ([`serde_json::from_str`] +
    /// [`JobSpec::from_json`]).
    pub fn parse(s: &str) -> Result<JobSpec, SpecError> {
        let v = serde_json::from_str(s).map_err(|e| SpecError::Parse(format!("{e:?}")))?;
        JobSpec::from_json(&v)
    }

    fn validate(&self) -> Result<(), SpecError> {
        if self.cells == 0 || self.cells % self.blocks.max(1) != 0 {
            return Err(SpecError::Invalid("cells"));
        }
        if self.blocks == 0 {
            return Err(SpecError::Invalid("blocks"));
        }
        if self.steps == 0 {
            return Err(SpecError::Invalid("steps"));
        }
        if self.ranks == 0 {
            return Err(SpecError::Invalid("ranks"));
        }
        if self.threads == 0 {
            return Err(SpecError::Invalid("threads"));
        }
        // Mirrors `trillium_bench::validation::is_supported`: the von
        // Kármán flow is stable only under the MRT family at job
        // resolutions. Rejecting up front turns a guaranteed divergence
        // into a typed submission error.
        if self.family == GeometryFamily::VonKarman && !self.collision.is_mrt() {
            return Err(SpecError::Invalid("collision"));
        }
        // The von Kármán geometry needs >= 2 spanwise blocks (periodic
        // axis) — see `Scenario::von_karman`.
        if self.family == GeometryFamily::VonKarman && self.blocks < 2 {
            return Err(SpecError::Invalid("blocks"));
        }
        if self.fault.is_some() && self.schedule != Schedule::Resilient {
            return Err(SpecError::Invalid("fault"));
        }
        if let Some(FaultSpec { crash: Some((r, _)), .. }) = self.fault {
            if r >= self.ranks {
                return Err(SpecError::Invalid("fault.crash_rank"));
            }
        }
        if let Some(s) = self.skew {
            if !(0.0..=1.0).contains(&s) {
                return Err(SpecError::Invalid("skew"));
            }
        }
        Ok(())
    }

    /// Builds the runnable scenario this spec describes.
    pub fn to_scenario(&self) -> Scenario {
        let s = match self.family {
            GeometryFamily::Cavity => {
                Scenario::lid_driven_cavity(self.cells, self.blocks, self.viscosity, self.velocity)
            }
            GeometryFamily::Channel => Scenario::channel_with_obstacle(
                [2 * self.cells, self.cells, self.cells],
                [2 * self.blocks, self.blocks, self.blocks],
                self.viscosity,
                self.velocity,
                0.2,
            ),
            GeometryFamily::VonKarman => Scenario::von_karman(
                [2 * self.cells, self.cells, self.cells],
                [2 * self.blocks, self.blocks, self.blocks],
                self.viscosity,
                self.velocity,
                // Validation-matrix proportions: 12.5 % blockage.
                self.cells as f64 / 8.0,
            ),
        };
        let s =
            s.with_kernel(self.kernel).with_collision(self.collision).with_backend(self.backend);
        match self.skew {
            Some(f) => s.with_skewed_balance(f),
            None => s,
        }
    }

    /// Total lattice cells the job touches per step.
    pub fn total_cells(&self) -> u64 {
        let c = self.cells as u64;
        match self.family {
            GeometryFamily::Cavity => c * c * c,
            GeometryFamily::Channel | GeometryFamily::VonKarman => 2 * c * c * c,
        }
    }

    /// Estimated memory traffic of the whole job in bytes — lattice
    /// updates priced by the D3Q19 roofline traffic model. This is the
    /// block-cost figure admission control compares against the pool
    /// budget: crude, but monotone in problem size and steps, which is
    /// all a reject/park decision needs.
    pub fn cost_estimate(&self) -> f64 {
        self.total_cells() as f64 * self.steps as f64 * bytes_per_lup(19)
    }

    /// Stable key grouping jobs that run the same workload — the unit
    /// the scheduler's measured-cost model learns per. Two jobs with the
    /// same template key are expected to cost the same wall time.
    pub fn template_key(&self) -> u64 {
        // FNV-1a over the fields that determine the work done.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut eat = |x: u64| {
            for b in x.to_le_bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x1000_0000_01b3);
            }
        };
        eat(match self.family {
            GeometryFamily::Cavity => 1,
            GeometryFamily::Channel => 2,
            GeometryFamily::VonKarman => 3,
        });
        eat(self.cells as u64);
        eat(self.blocks as u64);
        eat(self.steps);
        eat(u64::from(self.ranks));
        eat(match self.schedule {
            Schedule::Sync => 1,
            Schedule::Overlapped => 2,
            Schedule::Rebalanced => 3,
            Schedule::Resilient => 4,
        });
        // Operator and backend change the per-step cost (MRT's moment
        // transform, backend-dependent sweep rates), so jobs differing in
        // either must not share a learned cost template.
        eat(match self.collision {
            Collision::Srt => 1,
            Collision::Trt => 2,
            Collision::Mrt => 3,
            Collision::MrtLes => 4,
        });
        eat(match self.backend {
            BackendKind::Portable => 1,
            BackendKind::Avx2 => 2,
            BackendKind::Workgroup => 3,
        });
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimal_spec_parses_with_defaults() {
        let s = JobSpec::parse(r#"{"name": "j1", "family": "cavity"}"#).unwrap();
        assert_eq!(s.name, "j1");
        assert_eq!(s.family, GeometryFamily::Cavity);
        assert_eq!(s.cells, 16);
        assert_eq!(s.ranks, 2);
        assert_eq!(s.schedule, Schedule::Sync);
        assert_eq!(s.collision, Collision::Trt);
        assert_eq!(s.backend, BackendKind::default());
        assert!(s.fault.is_none());
        assert!(s.collect_pdfs);
    }

    #[test]
    fn collision_and_backend_keys_round_trip() {
        for (label, want) in [
            ("srt", Collision::Srt),
            ("trt", Collision::Trt),
            ("mrt", Collision::Mrt),
            ("mrt-les", Collision::MrtLes),
        ] {
            let s = JobSpec::parse(&format!(
                r#"{{"name": "x", "family": "cavity", "collision": "{label}"}}"#
            ))
            .unwrap();
            assert_eq!(s.collision, want, "label {label}");
            assert_eq!(s.to_scenario().collision, want);
        }
        for (label, want) in [
            ("portable", BackendKind::Portable),
            ("avx2", BackendKind::Avx2),
            ("workgroup", BackendKind::Workgroup),
        ] {
            let s = JobSpec::parse(&format!(
                r#"{{"name": "x", "family": "cavity", "backend": "{label}"}}"#
            ))
            .unwrap();
            assert_eq!(s.backend, want, "label {label}");
            assert_eq!(s.to_scenario().backend, want);
        }
    }

    #[test]
    fn von_karman_family_requires_the_mrt_family() {
        // TRT (and the default) are rejected with the offending field...
        assert_eq!(
            JobSpec::parse(r#"{"name": "x", "family": "von-karman"}"#).unwrap_err(),
            SpecError::Invalid("collision"),
        );
        assert_eq!(
            JobSpec::parse(r#"{"name": "x", "family": "von-karman", "collision": "srt"}"#)
                .unwrap_err(),
            SpecError::Invalid("collision"),
        );
        // ...while both MRT variants run end-to-end.
        for label in ["mrt", "mrt-les"] {
            let s = JobSpec::parse(&format!(
                r#"{{"name": "x", "family": "von-karman", "collision": "{label}", "cells": 8}}"#
            ))
            .unwrap();
            let sc = s.to_scenario();
            // 16×8×8 global cells over 4×2×2 blocks → 4³ per block.
            assert_eq!(sc.cells, [4, 4, 4]);
            assert_eq!(sc.blocks, [4, 2, 2]);
            assert!(sc.collision.is_mrt());
        }
        // The spanwise-periodic axis needs >= 2 blocks.
        assert_eq!(
            JobSpec::parse(
                r#"{"name": "x", "family": "von-karman", "collision": "mrt", "blocks": 1, "cells": 8}"#
            )
            .unwrap_err(),
            SpecError::Invalid("blocks"),
        );
    }

    #[test]
    fn collision_and_backend_distinguish_cost_templates() {
        let base = r#"{"name": "x", "family": "cavity"}"#;
        let mrt = r#"{"name": "x", "family": "cavity", "collision": "mrt"}"#;
        let wg = r#"{"name": "x", "family": "cavity", "backend": "workgroup"}"#;
        let a = JobSpec::parse(base).unwrap().template_key();
        assert_ne!(a, JobSpec::parse(mrt).unwrap().template_key());
        assert_ne!(a, JobSpec::parse(wg).unwrap().template_key());
    }

    #[test]
    fn full_spec_round_trips_every_field() {
        let s = JobSpec::parse(
            r#"{
                "name": "soak-42", "family": "channel", "cells": 8, "blocks": 1,
                "viscosity": 0.06, "velocity": 0.05, "kernel": "inplace",
                "steps": 6, "ranks": 2, "threads": 1, "priority": 3,
                "schedule": "resilient",
                "fault": {"seed": 9, "crash_rank": 1, "crash_step": 3, "recover": false}
            }"#,
        )
        .unwrap();
        assert_eq!(s.family, GeometryFamily::Channel);
        assert_eq!(s.kernel, KernelChoice::InPlace);
        assert_eq!(s.priority, 3);
        assert_eq!(s.schedule, Schedule::Resilient);
        assert_eq!(s.fault, Some(FaultSpec { seed: 9, crash: Some((1, 3)), recover: false }));
        assert_eq!(s.total_cells(), 2 * 8 * 8 * 8);
    }

    #[test]
    fn bad_specs_are_rejected_with_the_offending_field() {
        let cases = [
            (r#"{"family": "cavity"}"#, SpecError::Missing("name")),
            (r#"{"name": "x", "family": "torus"}"#, SpecError::Invalid("family")),
            (r#"{"name": "x", "family": "cavity", "cells": 0}"#, SpecError::Invalid("cells")),
            (r#"{"name": "x", "family": "cavity", "cells": 15}"#, SpecError::Invalid("cells")),
            (r#"{"name": "x", "family": "cavity", "ranks": 0}"#, SpecError::Invalid("ranks")),
            (
                r#"{"name": "x", "family": "cavity", "collision": "bgk"}"#,
                SpecError::Invalid("collision"),
            ),
            (
                r#"{"name": "x", "family": "cavity", "backend": "cuda"}"#,
                SpecError::Invalid("backend"),
            ),
            // A fault plan outside the resilient schedule would hang,
            // not degrade; refuse it up front.
            (
                r#"{"name": "x", "family": "cavity", "fault": {"seed": 1}}"#,
                SpecError::Invalid("fault"),
            ),
            (
                r#"{"name": "x", "family": "cavity", "schedule": "resilient",
                    "fault": {"crash_rank": 5, "crash_step": 1}}"#,
                SpecError::Invalid("fault.crash_rank"),
            ),
        ];
        for (doc, want) in cases {
            assert_eq!(JobSpec::parse(doc).unwrap_err(), want, "doc: {doc}");
        }
    }

    #[test]
    fn cost_estimate_is_monotone_in_size_and_steps() {
        let small = JobSpec::parse(r#"{"name": "s", "family": "cavity", "cells": 8}"#).unwrap();
        let big = JobSpec::parse(r#"{"name": "b", "family": "cavity", "cells": 32}"#).unwrap();
        let long = JobSpec::parse(r#"{"name": "l", "family": "cavity", "cells": 8, "steps": 100}"#)
            .unwrap();
        assert!(big.cost_estimate() > small.cost_estimate());
        assert!(long.cost_estimate() > small.cost_estimate());
        assert_eq!(small.template_key(), small.template_key());
        assert_ne!(small.template_key(), big.template_key());
    }

    #[test]
    fn scenario_construction_matches_the_family() {
        // `Scenario::cells` is per block: 16³ over 2³ blocks → 8³ each.
        let s = JobSpec::parse(r#"{"name": "x", "family": "cavity", "cells": 16, "blocks": 2}"#)
            .unwrap()
            .to_scenario();
        assert_eq!(s.cells, [8, 8, 8]);
        assert_eq!(s.blocks, [2, 2, 2]);
        // Channel doubles the x extent: 32×16×16 over 2×1×1 blocks.
        let c = JobSpec::parse(r#"{"name": "x", "family": "channel", "cells": 16, "blocks": 1}"#)
            .unwrap()
            .to_scenario();
        assert_eq!(c.cells, [16, 16, 16]);
        assert_eq!(c.blocks, [2, 1, 1]);
    }
}
