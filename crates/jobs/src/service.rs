//! The multi-tenant job service: admission control, priority queueing,
//! measured-cost lane packing, and fault-isolated execution.
//!
//! ## Pool model
//!
//! The service owns a pool of `lanes × lane_width` rank slots. A *lane*
//! is a disjoint cohort of `lane_width` slots: jobs on different lanes
//! run concurrently with structurally disjoint communicator meshes
//! (each job gets its own [`World::connect`] mesh), so no message of
//! one job can ever reach another — isolation is a property of the
//! wiring, not of tag discipline.
//!
//! ## Admission
//!
//! [`JobService::submit`] *rejects* jobs that could never run: wider
//! than a lane, or with a [`JobSpec::cost_estimate`] (the
//! `trillium-perfmodel` roofline traffic figure) above the configured
//! budget. Jobs that merely cannot run *now* are *parked* in the
//! priority queue until a lane frees up; a full queue rejects too.
//!
//! ## Packing
//!
//! Each scheduling round considers up to `batch` parked jobs per free
//! lane (highest priority first) and bin-packs them onto the free lanes
//! with [`trillium_rebalance::plan_rebalance`] — the same measured-cost
//! partitioner the runtime rebalancer uses, fed with per-template
//! *measured* wall seconds (EWMA over completed jobs) where available
//! and the admission estimate otherwise. Jobs packed onto one lane run
//! sequentially on it; lanes drain in parallel.
//!
//! ## Isolation
//!
//! Every rank of every job runs under `catch_unwind`. A panicking rank
//! drops its communicator mid-unwind, which broadcasts a rank-down note
//! to its *own* cohort only: the sibling ranks degrade (comm errors or
//! contained panics, all caught), the job is reported
//! [`JobResult::Failed`], the lane is reclaimed, and every other job —
//! on this lane and all others — is untouched. The re-entrancy and soak
//! tests pin this.

use crate::spec::{JobSpec, Schedule};
use crate::JOBS_SCHEMA;
use serde_json::{json, Value};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use trillium_comm::{FaultConfig, World};
use trillium_core::driver::{
    drive_rank, drive_rank_rebalanced, plan_run, DriverConfig, RebalanceConfig, RunResult,
};
use trillium_core::recovery::{drive_rank_resilient, ResilienceConfig};
use trillium_rebalance::{plan_rebalance, BlockRecord, EwmaCostModel, PlanOptions};

/// Service-assigned job handle, unique per service instance.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct JobId(pub u64);

/// Static service configuration.
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Disjoint cohorts that can run concurrently.
    pub lanes: u32,
    /// Rank slots per lane; jobs wider than this are rejected.
    pub lane_width: u32,
    /// Parked-queue capacity; submissions beyond it are rejected.
    pub max_parked: usize,
    /// Admission ceiling on [`JobSpec::cost_estimate`] (bytes of
    /// modeled lattice traffic).
    pub cost_budget: f64,
    /// Parked jobs considered per free lane in one packing round.
    pub batch: usize,
    /// EWMA smoothing for the measured per-template cost model.
    pub ewma_alpha: f64,
    /// Failure-detector patience for resilient jobs.
    pub step_timeout: Duration,
    /// Recovery-barrier patience for resilient jobs.
    pub recovery_timeout: Duration,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            lanes: 2,
            lane_width: 2,
            max_parked: 4096,
            // Generous default: ~1 TiB of modeled traffic. Admission is
            // about refusing the absurd, not tuning throughput.
            cost_budget: 1e12,
            batch: 8,
            ewma_alpha: 0.3,
            step_timeout: Duration::from_secs(2),
            recovery_timeout: Duration::from_secs(20),
        }
    }
}

/// Why a submission was refused.
#[derive(Clone, Debug, PartialEq)]
pub enum AdmissionError {
    /// The job wants more ranks than a lane has slots — it could never
    /// be scheduled.
    TooWide {
        /// Requested cohort width.
        ranks: u32,
        /// Slots per lane.
        lane_width: u32,
    },
    /// The roofline cost estimate exceeds the pool budget.
    TooExpensive {
        /// The job's [`JobSpec::cost_estimate`].
        estimate: f64,
        /// The configured ceiling.
        budget: f64,
    },
    /// The parking queue is at capacity.
    QueueFull {
        /// Jobs currently parked.
        parked: usize,
    },
}

impl std::fmt::Display for AdmissionError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AdmissionError::TooWide { ranks, lane_width } => {
                write!(f, "job wants {ranks} ranks but lanes have {lane_width} slots")
            }
            AdmissionError::TooExpensive { estimate, budget } => {
                write!(f, "cost estimate {estimate:.3e} exceeds budget {budget:.3e}")
            }
            AdmissionError::QueueFull { parked } => {
                write!(f, "queue full ({parked} jobs parked)")
            }
        }
    }
}

impl std::error::Error for AdmissionError {}

/// Terminal state of one job.
#[derive(Clone, Debug)]
pub enum JobResult {
    /// The job ran to the end (possibly through rollback recoveries).
    Completed {
        /// The simulation result, bitwise identical to a solo run of
        /// the same spec.
        run: RunResult,
        /// Rollback recoveries survived (resilient schedule only).
        recoveries: u32,
    },
    /// The job died — a rank panic or an unrecoverable fault — without
    /// taking anything else with it.
    Failed {
        /// Human-readable cause (panic payload or typed recovery
        /// error).
        error: String,
    },
}

/// Everything the service knows about a finished job.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// Service-assigned id.
    pub id: JobId,
    /// Client-chosen name.
    pub name: String,
    /// Lane the job ran on.
    pub lane: u32,
    /// Seconds from submission to dispatch — the queue latency the
    /// soak harness bounds.
    pub queue_seconds: f64,
    /// Seconds of execution.
    pub run_seconds: f64,
    /// How it ended.
    pub result: JobResult,
}

impl JobOutcome {
    /// True iff the job completed.
    pub fn completed(&self) -> bool {
        matches!(self.result, JobResult::Completed { .. })
    }
}

struct Parked {
    id: JobId,
    seq: u64,
    spec: Arc<JobSpec>,
    submitted: Instant,
}

struct LaneReport {
    lane: u32,
    outcomes: Vec<(Arc<JobSpec>, JobOutcome)>,
}

/// The multi-tenant job service. Single-threaded control plane
/// ([`JobService::submit`] / [`JobService::run_to_completion`]) over a
/// pool of lane worker threads.
pub struct JobService {
    cfg: ServiceConfig,
    next_id: u64,
    parked: Vec<Parked>,
    lane_free: Vec<bool>,
    running_lanes: u32,
    measured: EwmaCostModel,
    done_tx: Sender<LaneReport>,
    done_rx: Receiver<LaneReport>,
    handles: Vec<JoinHandle<()>>,
    outcomes: Vec<JobOutcome>,
    progress: Option<Sender<Value>>,
}

impl JobService {
    /// Creates an idle service over `cfg.lanes × cfg.lane_width` rank
    /// slots.
    pub fn new(cfg: ServiceConfig) -> Self {
        assert!(cfg.lanes > 0 && cfg.lane_width > 0 && cfg.batch > 0);
        let (done_tx, done_rx) = channel();
        JobService {
            lane_free: vec![true; cfg.lanes as usize],
            measured: EwmaCostModel::new(cfg.ewma_alpha),
            next_id: 0,
            parked: Vec::new(),
            running_lanes: 0,
            done_tx,
            done_rx,
            handles: Vec::new(),
            outcomes: Vec::new(),
            progress: None,
            cfg,
        }
    }

    /// Attaches a progress stream: every lifecycle event (`queued`,
    /// `started`, `finished`) is sent as a `trillium.bench/v1` envelope
    /// [`Value`]. A dropped receiver is ignored — observation must
    /// never stall the service.
    pub fn with_progress(mut self, sink: Sender<Value>) -> Self {
        self.progress = Some(sink);
        self
    }

    /// Validates and parks a job, or rejects it. Parked jobs wait, in
    /// priority order, for a free lane; rejection is immediate and
    /// final.
    pub fn submit(&mut self, spec: JobSpec) -> Result<JobId, AdmissionError> {
        if spec.ranks > self.cfg.lane_width {
            return Err(AdmissionError::TooWide {
                ranks: spec.ranks,
                lane_width: self.cfg.lane_width,
            });
        }
        let estimate = spec.cost_estimate();
        if estimate > self.cfg.cost_budget {
            return Err(AdmissionError::TooExpensive { estimate, budget: self.cfg.cost_budget });
        }
        if self.parked.len() >= self.cfg.max_parked {
            return Err(AdmissionError::QueueFull { parked: self.parked.len() });
        }
        let id = JobId(self.next_id);
        let seq = self.next_id;
        self.next_id += 1;
        self.emit(json!({
            "event": "queued",
            "job": spec.name.clone(),
            "id": id.0,
            "priority": spec.priority,
            "cost_estimate": estimate
        }));
        self.parked.push(Parked { id, seq, spec: Arc::new(spec), submitted: Instant::now() });
        Ok(id)
    }

    /// Jobs currently parked.
    pub fn parked(&self) -> usize {
        self.parked.len()
    }

    /// Drives the service until every submitted job has finished and
    /// returns all outcomes accumulated so far (submission order is not
    /// preserved; sort by [`JobOutcome::id`] if needed). Re-entrant:
    /// more jobs may be submitted afterwards and a further call
    /// continues where this one left off.
    pub fn run_to_completion(&mut self) -> Vec<JobOutcome> {
        loop {
            self.dispatch_round();
            if self.running_lanes == 0 {
                if self.parked.is_empty() {
                    break;
                }
                // Free lanes exist (nothing is running) yet nothing was
                // dispatched: impossible by construction, but never spin.
                continue;
            }
            let report = self.done_rx.recv().expect("lane workers hold the sender");
            self.absorb(report);
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
        std::mem::take(&mut self.outcomes)
    }

    fn absorb(&mut self, report: LaneReport) {
        self.lane_free[report.lane as usize] = true;
        self.running_lanes -= 1;
        for (spec, outcome) in report.outcomes {
            // Feed the measured-cost model: future packing rounds place
            // this template by observed wall seconds, not the estimate.
            self.measured.update(spec.template_key(), outcome.run_seconds);
            self.outcomes.push(outcome);
        }
    }

    /// Packs parked jobs onto the currently free lanes and launches a
    /// worker per non-empty lane.
    fn dispatch_round(&mut self) {
        let free: Vec<u32> = (0..self.cfg.lanes).filter(|&l| self.lane_free[l as usize]).collect();
        if free.is_empty() || self.parked.is_empty() {
            return;
        }
        // Highest priority first; FIFO within a priority.
        self.parked.sort_by(|a, b| b.spec.priority.cmp(&a.spec.priority).then(a.seq.cmp(&b.seq)));
        let take = (free.len() * self.cfg.batch).min(self.parked.len());
        let round: Vec<Parked> = self.parked.drain(..take).collect();

        // Bin-pack the round onto the free lanes with the measured-cost
        // partitioner. Costs are wall seconds: measured EWMA where a
        // template has history, otherwise the traffic estimate scaled by
        // a nominal 1 GiB/s — the units only have to be consistent
        // within one round.
        let records: Vec<BlockRecord> = round
            .iter()
            .enumerate()
            .map(|(i, p)| {
                let measured = self.measured.cost(p.spec.template_key());
                let cost = if measured > 0.0 { measured } else { p.spec.cost_estimate() / 1e9 };
                BlockRecord {
                    id: p.seq,
                    owner: (i % free.len()) as u32,
                    coords: [0, 0, 0],
                    level: 0,
                    cost: cost.max(1e-9),
                    fluid_cells: p.spec.total_cells(),
                }
            })
            .collect();
        let plan = plan_rebalance(
            records,
            free.len() as u32,
            &PlanOptions { min_ratio: 1.0, ..PlanOptions::default() },
        );
        let mut per_lane: Vec<Vec<Parked>> = (0..free.len()).map(|_| Vec::new()).collect();
        let mut by_seq: std::collections::HashMap<u64, Parked> =
            round.into_iter().map(|p| (p.seq, p)).collect();
        for (rec, &lane) in plan.records.iter().zip(&plan.assignment) {
            if let Some(p) = by_seq.remove(&rec.id) {
                per_lane[lane as usize].push(p);
            }
        }
        debug_assert!(by_seq.is_empty(), "every packed job must land on a lane");

        for (slot, mut jobs) in per_lane.into_iter().enumerate() {
            if jobs.is_empty() {
                continue;
            }
            // Within a lane, honor priority again (the partitioner
            // groups by cost, not urgency).
            jobs.sort_by(|a, b| b.spec.priority.cmp(&a.spec.priority).then(a.seq.cmp(&b.seq)));
            let lane = free[slot];
            self.lane_free[lane as usize] = false;
            self.running_lanes += 1;
            let done = self.done_tx.clone();
            let progress = self.progress.clone();
            let (step_timeout, recovery_timeout) =
                (self.cfg.step_timeout, self.cfg.recovery_timeout);
            self.handles.push(std::thread::spawn(move || {
                run_lane(lane, jobs, step_timeout, recovery_timeout, progress, done);
            }));
        }
    }

    fn emit(&self, payload: Value) {
        emit_to(&self.progress, payload);
    }
}

/// Wraps a payload in the shared `trillium.bench/v1` envelope (the same
/// shape `trillium-bench` emits, duplicated here because the bench
/// crate sits above this one in the dependency graph).
pub fn envelope(payload: Value) -> Value {
    let mut fields = vec![
        ("schema".to_string(), Value::String(JOBS_SCHEMA.to_string())),
        ("bin".to_string(), Value::String("trillium-jobs".to_string())),
    ];
    match payload {
        Value::Object(obj) => fields.extend(obj),
        other => fields.push(("rows".to_string(), other)),
    }
    Value::Object(fields)
}

fn emit_to(progress: &Option<Sender<Value>>, payload: Value) {
    if let Some(sink) = progress {
        let _ = sink.send(envelope(payload));
    }
}

/// Lane worker: runs its packed jobs sequentially, reporting each one.
fn run_lane(
    lane: u32,
    jobs: Vec<Parked>,
    step_timeout: Duration,
    recovery_timeout: Duration,
    progress: Option<Sender<Value>>,
    done: Sender<LaneReport>,
) {
    let mut outcomes = Vec::with_capacity(jobs.len());
    for p in jobs {
        let queue_seconds = p.submitted.elapsed().as_secs_f64();
        emit_to(
            &progress,
            json!({
                "event": "started",
                "job": p.spec.name.clone(),
                "id": p.id.0,
                "lane": lane,
                "queue_seconds": queue_seconds
            }),
        );
        let t0 = Instant::now();
        let result = run_job(&p.spec, step_timeout, recovery_timeout);
        let run_seconds = t0.elapsed().as_secs_f64();
        let (status, error, recoveries, metrics) = match &result {
            JobResult::Completed { run, recoveries } => {
                ("completed", Value::Null, *recoveries, run.metrics().to_json())
            }
            JobResult::Failed { error } => ("failed", Value::String(error.clone()), 0, Value::Null),
        };
        emit_to(
            &progress,
            json!({
                "event": "finished",
                "job": p.spec.name.clone(),
                "id": p.id.0,
                "lane": lane,
                "status": status,
                "error": error,
                "recoveries": recoveries,
                "queue_seconds": queue_seconds,
                "run_seconds": run_seconds,
                "metrics": metrics
            }),
        );
        outcomes.push((
            p.spec.clone(),
            JobOutcome {
                id: p.id,
                name: p.spec.name.clone(),
                lane,
                queue_seconds,
                run_seconds,
                result,
            },
        ));
    }
    // The service may already be gone if the caller dropped it without
    // draining; nothing to do about it here.
    let _ = done.send(LaneReport { lane, outcomes });
}

/// Runs one job on its own freshly wired cohort, with every rank under
/// `catch_unwind`. This is the failure-isolation boundary: whatever
/// happens inside — a kernel panic, a poisoned collective, an
/// exhausted recovery budget — comes back as a [`JobResult`], never as
/// an unwind into the lane worker.
fn run_job(spec: &JobSpec, step_timeout: Duration, recovery_timeout: Duration) -> JobResult {
    let scenario = spec.to_scenario();
    let plan = plan_run(&scenario, spec.ranks);
    let fault = spec.fault.map(|f| {
        let fc = FaultConfig::new(f.seed);
        match f.crash {
            Some((rank, step)) => fc.with_crash(rank, step),
            None => fc,
        }
    });
    let driver = DriverConfig {
        collect_pdfs: spec.collect_pdfs,
        overlap: spec.schedule == Schedule::Overlapped,
        ..DriverConfig::default()
    };
    let comms = World::connect(spec.ranks, fault);

    let mut recoveries = 0u32;
    let mut ranks = Vec::with_capacity(comms.len());
    let per_rank: Vec<_> = std::thread::scope(|scope| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let (plan, scenario) = (&plan, &scenario);
                scope.spawn(move || {
                    catch_unwind(AssertUnwindSafe(move || match spec.schedule {
                        Schedule::Sync | Schedule::Overlapped => Ok((
                            drive_rank(comm, plan, scenario, spec.threads, spec.steps, &[], driver),
                            0,
                        )),
                        Schedule::Rebalanced => Ok((
                            drive_rank_rebalanced(
                                comm,
                                plan,
                                scenario,
                                spec.threads,
                                spec.steps,
                                RebalanceConfig {
                                    collect_pdfs: spec.collect_pdfs,
                                    ..RebalanceConfig::default()
                                },
                            ),
                            0,
                        )),
                        Schedule::Resilient => {
                            let rc = ResilienceConfig {
                                step_timeout,
                                recovery_timeout,
                                checkpoint_every: 4,
                                max_recoveries: match spec.fault {
                                    Some(f) if !f.recover => 0,
                                    _ => ResilienceConfig::default().max_recoveries,
                                },
                                fault: None, // installed via World::connect
                                driver,
                            };
                            drive_rank_resilient(
                                comm,
                                plan,
                                scenario,
                                spec.threads,
                                spec.steps,
                                &[],
                                &rc,
                            )
                            .map(|(r, rep)| (r, rep.recoveries))
                        }
                    }))
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("rank thread itself never dies")).collect()
    });

    for r in per_rank {
        match r {
            Ok(Ok((rank_result, recs))) => {
                recoveries = recoveries.max(recs);
                ranks.push(rank_result);
            }
            Ok(Err(recovery_err)) => {
                return JobResult::Failed { error: recovery_err.to_string() };
            }
            Err(panic_payload) => {
                let msg = panic_payload
                    .downcast_ref::<String>()
                    .map(String::as_str)
                    .or_else(|| panic_payload.downcast_ref::<&str>().copied())
                    .unwrap_or("opaque panic payload");
                return JobResult::Failed { error: format!("rank panicked: {msg}") };
            }
        }
    }
    JobResult::Completed { run: RunResult { steps: spec.steps, ranks }, recoveries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_core::driver::run_distributed_with;

    fn spec(doc: &str) -> JobSpec {
        JobSpec::parse(doc).expect("test spec parses")
    }

    #[test]
    fn admission_rejects_the_impossible_and_parks_the_rest() {
        let mut svc = JobService::new(ServiceConfig {
            lanes: 1,
            lane_width: 2,
            max_parked: 2,
            cost_budget: 1e9,
            ..ServiceConfig::default()
        });
        assert!(matches!(
            svc.submit(spec(r#"{"name": "wide", "family": "cavity", "ranks": 4}"#)),
            Err(AdmissionError::TooWide { ranks: 4, lane_width: 2 })
        ));
        assert!(matches!(
            svc.submit(spec(
                r#"{"name": "huge", "family": "cavity", "cells": 64, "blocks": 2, "steps": 100000}"#
            )),
            Err(AdmissionError::TooExpensive { .. })
        ));
        svc.submit(spec(r#"{"name": "a", "family": "cavity", "steps": 2}"#)).unwrap();
        svc.submit(spec(r#"{"name": "b", "family": "cavity", "steps": 2}"#)).unwrap();
        assert!(matches!(
            svc.submit(spec(r#"{"name": "c", "family": "cavity", "steps": 2}"#)),
            Err(AdmissionError::QueueFull { parked: 2 })
        ));
        assert_eq!(svc.parked(), 2);
        let outcomes = svc.run_to_completion();
        assert_eq!(outcomes.len(), 2);
        assert!(outcomes.iter().all(JobOutcome::completed));
    }

    #[test]
    fn jobs_complete_bitwise_identical_to_solo_runs() {
        let doc = r#"{"name": "j", "family": "cavity", "cells": 16, "blocks": 2,
                      "steps": 8, "ranks": 2, "schedule": "overlapped"}"#;
        let s = spec(doc);
        let solo = run_distributed_with(
            &s.to_scenario(),
            2,
            1,
            8,
            &[],
            DriverConfig { collect_pdfs: true, overlap: true, ..DriverConfig::default() },
        );
        let mut svc = JobService::new(ServiceConfig::default());
        for _ in 0..4 {
            svc.submit(spec(doc)).unwrap();
        }
        let outcomes = svc.run_to_completion();
        assert_eq!(outcomes.len(), 4);
        for o in outcomes {
            match o.result {
                JobResult::Completed { run, .. } => {
                    assert_eq!(run.pdf_dump(), solo.pdf_dump(), "job {} diverged", o.name)
                }
                JobResult::Failed { error } => panic!("job {} failed: {error}", o.name),
            }
        }
    }

    #[test]
    fn a_dying_job_is_contained_and_its_neighbors_finish_clean() {
        let healthy = r#"{"name": "ok", "family": "cavity", "cells": 16, "blocks": 2,
                          "steps": 8, "ranks": 2}"#;
        let doomed = r#"{"name": "doomed", "family": "cavity", "cells": 16, "blocks": 2,
                         "steps": 8, "ranks": 2, "schedule": "resilient",
                         "fault": {"seed": 7, "crash_rank": 1, "crash_step": 3,
                                   "recover": false}}"#;
        let recovering = r#"{"name": "phoenix", "family": "cavity", "cells": 16, "blocks": 2,
                             "steps": 8, "ranks": 2, "schedule": "resilient",
                             "fault": {"seed": 7, "crash_rank": 1, "crash_step": 3,
                                       "recover": true}}"#;
        let solo = run_distributed_with(
            &spec(healthy).to_scenario(),
            2,
            1,
            8,
            &[],
            DriverConfig { collect_pdfs: true, ..DriverConfig::default() },
        );

        let mut svc = JobService::new(ServiceConfig::default());
        svc.submit(spec(healthy)).unwrap();
        svc.submit(spec(doomed)).unwrap();
        svc.submit(spec(recovering)).unwrap();
        svc.submit(spec(healthy)).unwrap();
        let mut outcomes = svc.run_to_completion();
        outcomes.sort_by_key(|o| o.id);
        assert_eq!(outcomes.len(), 4);

        for o in &outcomes {
            match (&o.name[..], &o.result) {
                ("ok", JobResult::Completed { run, .. }) => {
                    assert_eq!(run.pdf_dump(), solo.pdf_dump(), "healthy job diverged")
                }
                ("doomed", JobResult::Failed { error }) => {
                    assert!(
                        error.contains("gave up") || error.contains("unrecoverable"),
                        "doomed job must die a typed death, got: {error}"
                    )
                }
                // The recovering job rolls back and replays — and replay
                // is bitwise identical to the unfaulted run.
                ("phoenix", JobResult::Completed { run, recoveries }) => {
                    assert_eq!(*recoveries, 1);
                    assert_eq!(run.pdf_dump(), solo.pdf_dump(), "recovered job diverged")
                }
                (name, r) => panic!("job {name}: unexpected outcome {r:?}"),
            }
        }
    }

    #[test]
    fn priority_orders_dispatch_and_progress_streams_the_lifecycle() {
        let (tx, rx) = channel();
        let mut svc =
            JobService::new(ServiceConfig { lanes: 1, lane_width: 2, ..ServiceConfig::default() })
                .with_progress(tx);
        let lo = r#"{"name": "lo", "family": "cavity", "steps": 2, "priority": 0}"#;
        let hi = r#"{"name": "hi", "family": "cavity", "steps": 2, "priority": 5}"#;
        svc.submit(spec(lo)).unwrap();
        svc.submit(spec(hi)).unwrap();
        let outcomes = svc.run_to_completion();
        assert_eq!(outcomes.len(), 2);
        drop(svc);

        let events: Vec<Value> = rx.iter().collect();
        for e in &events {
            assert_eq!(e.get("schema").and_then(Value::as_str), Some(JOBS_SCHEMA));
            assert_eq!(e.get("bin").and_then(Value::as_str), Some("trillium-jobs"));
        }
        let started: Vec<&str> = events
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some("started"))
            .map(|e| e.get("job").and_then(Value::as_str).unwrap())
            .collect();
        assert_eq!(started, ["hi", "lo"], "higher priority must dispatch first");
        let finished = events
            .iter()
            .filter(|e| e.get("event").and_then(Value::as_str) == Some("finished"))
            .count();
        assert_eq!(finished, 2);
    }
}
