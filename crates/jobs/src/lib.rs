#![warn(missing_docs)]
//! trillium-jobs — a multi-tenant simulation job service.
//!
//! The paper's framework assumes one process carries one simulation;
//! this layer turns the re-entrant driver into a *service*: clients
//! submit JSON job specs ([`JobSpec`]), the service admits or rejects
//! them against a `trillium-perfmodel` cost budget, parks them in a
//! priority queue, bin-packs each scheduling round onto disjoint rank
//! cohorts with the measured-cost partitioner from
//! `trillium-rebalance`, runs every job under a `catch_unwind`
//! fault-isolation boundary (one job's crash never touches its
//! neighbors), and streams per-job progress and `trillium-obs` metrics
//! in the `trillium.bench/v1` envelope.
//!
//! ```
//! use trillium_jobs::{JobService, JobSpec, ServiceConfig};
//!
//! let mut svc = JobService::new(ServiceConfig::default());
//! let spec = JobSpec::parse(
//!     r#"{"name": "demo", "family": "cavity", "cells": 16,
//!         "blocks": 2, "steps": 4, "ranks": 2}"#,
//! )
//! .unwrap();
//! svc.submit(spec).unwrap();
//! let outcomes = svc.run_to_completion();
//! assert!(outcomes[0].completed());
//! ```

pub mod service;
pub mod spec;

/// Schema tag of every progress/report envelope this crate emits —
/// identical to `trillium_bench::BENCH_SCHEMA` (duplicated because the
/// bench crate depends on this one, not the other way around).
pub const JOBS_SCHEMA: &str = "trillium.bench/v1";

pub use service::{
    envelope, AdmissionError, JobId, JobOutcome, JobResult, JobService, ServiceConfig,
};
pub use spec::{FaultSpec, GeometryFamily, JobSpec, Schedule, SpecError};
