//! Deterministic, seed-driven fault injection for the rank substrate.
//!
//! The paper's trillion-cell runs occupy full machines where component
//! failure over a multi-hour run is expected, not exceptional. The
//! thread-backed [`crate::World`] makes failures *reproducible* in the
//! FoundationDB deterministic-simulation sense: every injected fault is a
//! pure function of `(seed, sender rank, destination, message sequence
//! number)`, so the same [`FaultConfig`] produces the identical failure
//! trace on every run regardless of thread scheduling. The supported
//! faults are message **drop**, **duplication**, **delay/reordering**
//! (hold a message back for a bounded number of subsequent sends to the
//! same destination), and a fail-stop **rank crash at step N**.
//!
//! Decisions are made sender-side in [`FaultPlan::decide`]; the
//! mechanics (limbo queues, duplicate suppression, crash notification)
//! live in [`crate::runtime`].

/// A fail-stop crash of one rank at the start of one time step.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashSpec {
    /// Rank that crashes.
    pub rank: u32,
    /// Step at whose start the crash fires (before any sends).
    pub step: u64,
}

/// Seed-driven fault-injection configuration, shared by every rank of a
/// [`crate::World::run_with_faults`] run.
#[derive(Clone, Debug)]
pub struct FaultConfig {
    /// Seed of the deterministic fault stream.
    pub seed: u64,
    /// Probability that a message is silently dropped.
    pub drop_prob: f64,
    /// Probability that a message is delivered twice (the duplicate
    /// carries the same sequence number and must be suppressed by the
    /// receiver).
    pub dup_prob: f64,
    /// Probability that a message is held back (reordered past later
    /// sends to the same destination).
    pub delay_prob: f64,
    /// Maximum hold-back, in subsequent sends to the same destination.
    pub max_delay: u32,
    /// Cap on the total number of injected message faults per rank
    /// (drop + duplicate + delay). `None` = unlimited. A finite cap
    /// guarantees that checkpoint/restart recovery converges: replayed
    /// traffic eventually runs fault-free.
    pub max_faults: Option<u32>,
    /// Optional fail-stop crash (one-shot; the restarted rank does not
    /// re-crash).
    pub crash: Option<CrashSpec>,
}

impl FaultConfig {
    /// A quiet plan (no faults) with the given seed; compose with the
    /// `with_*` builders.
    pub fn new(seed: u64) -> Self {
        FaultConfig {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            delay_prob: 0.0,
            max_delay: 3,
            max_faults: None,
            crash: None,
        }
    }

    /// Drops each message with probability `p`.
    pub fn with_drops(mut self, p: f64) -> Self {
        self.drop_prob = p;
        self
    }

    /// Duplicates each message with probability `p`.
    pub fn with_duplicates(mut self, p: f64) -> Self {
        self.dup_prob = p;
        self
    }

    /// Delays each message with probability `p` by 1..=`max_delay`
    /// subsequent sends to the same destination.
    pub fn with_reordering(mut self, p: f64, max_delay: u32) -> Self {
        self.delay_prob = p;
        self.max_delay = max_delay.max(1);
        self
    }

    /// Crashes `rank` at the start of `step` (fail-stop).
    pub fn with_crash(mut self, rank: u32, step: u64) -> Self {
        self.crash = Some(CrashSpec { rank, step });
        self
    }

    /// Caps the total injected message faults per rank.
    pub fn with_fault_cap(mut self, n: u32) -> Self {
        self.max_faults = Some(n);
        self
    }

    /// True if any fault kind can fire.
    pub fn is_active(&self) -> bool {
        self.drop_prob > 0.0 || self.dup_prob > 0.0 || self.delay_prob > 0.0 || self.crash.is_some()
    }
}

/// One injected fault, in the order the sending rank injected it. The
/// per-rank event list is the *failure trace*: bitwise reproducible for a
/// given seed because every decision is a pure hash of
/// `(seed, from, to, seq)`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultEvent {
    /// Message `seq` to rank `to` was dropped.
    Dropped {
        /// Destination rank.
        to: u32,
        /// Per-destination sequence number of the dropped message.
        seq: u64,
    },
    /// Message `seq` to rank `to` was delivered twice.
    Duplicated {
        /// Destination rank.
        to: u32,
        /// Sequence number of the duplicated message.
        seq: u64,
    },
    /// Message `seq` to rank `to` was held back past `by` later sends.
    Delayed {
        /// Destination rank.
        to: u32,
        /// Sequence number of the delayed message.
        seq: u64,
        /// Hold-back, in subsequent sends to the same destination.
        by: u32,
    },
    /// This rank crashed (fail-stop) at the start of `step`.
    Crashed {
        /// Step at whose start the crash fired.
        step: u64,
    },
}

/// What the fault layer does with one outgoing message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendAction {
    /// Deliver normally.
    Deliver,
    /// Silently discard.
    Drop,
    /// Deliver twice (same sequence number).
    Duplicate,
    /// Hold back past `n` subsequent sends to the same destination.
    Delay(u32),
}

/// Per-rank instantiation of a [`FaultConfig`]: makes the decisions and
/// records the failure trace.
pub(crate) struct FaultPlan {
    cfg: FaultConfig,
    rank: u32,
    injected: u32,
    crashed: bool,
    events: Vec<FaultEvent>,
}

/// SplitMix64 — the decision hash. Statistically fine for probabilities
/// and fully deterministic.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl FaultPlan {
    pub(crate) fn new(cfg: FaultConfig, rank: u32) -> Self {
        FaultPlan { cfg, rank, injected: 0, crashed: false, events: Vec::new() }
    }

    /// Uniform `[0, 1)` draw for message (`to`, `seq`), salted by `salt`.
    fn draw(&self, to: u32, seq: u64, salt: u64) -> f64 {
        let key = self.cfg.seed.wrapping_mul(0x2545_f491_4f6c_dd1d)
            ^ ((self.rank as u64) << 40)
            ^ ((to as u64) << 20)
            ^ seq.wrapping_mul(0x9e37_79b9_7f4a_7c15)
            ^ salt.wrapping_mul(0xd6e8_feb8_6659_fd93);
        (splitmix64(key) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Decides the fate of message `seq` to rank `to` and records the
    /// event. Pure in `(seed, rank, to, seq)` — timing-independent.
    pub(crate) fn decide(&mut self, to: u32, seq: u64) -> SendAction {
        if let Some(cap) = self.cfg.max_faults {
            if self.injected >= cap {
                return SendAction::Deliver;
            }
        }
        let u = self.draw(to, seq, 0);
        let action = if u < self.cfg.drop_prob {
            self.events.push(FaultEvent::Dropped { to, seq });
            SendAction::Drop
        } else if u < self.cfg.drop_prob + self.cfg.dup_prob {
            self.events.push(FaultEvent::Duplicated { to, seq });
            SendAction::Duplicate
        } else if u < self.cfg.drop_prob + self.cfg.dup_prob + self.cfg.delay_prob {
            let by = 1
                + (splitmix64(self.draw(to, seq, 1).to_bits()) % self.cfg.max_delay as u64) as u32;
            self.events.push(FaultEvent::Delayed { to, seq, by });
            SendAction::Delay(by)
        } else {
            return SendAction::Deliver;
        };
        self.injected += 1;
        action
    }

    /// True exactly once: when this rank's configured crash step starts.
    pub(crate) fn crash_due(&mut self, step: u64) -> bool {
        match self.cfg.crash {
            Some(c) if !self.crashed && c.rank == self.rank && c.step == step => {
                self.crashed = true;
                self.events.push(FaultEvent::Crashed { step });
                true
            }
            _ => false,
        }
    }

    pub(crate) fn events(&self) -> &[FaultEvent] {
        &self.events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic_per_seed() {
        let cfg = FaultConfig::new(42).with_drops(0.2).with_duplicates(0.2).with_reordering(0.2, 4);
        let run = |cfg: FaultConfig| {
            let mut plan = FaultPlan::new(cfg, 1);
            let acts: Vec<SendAction> = (0..200).map(|s| plan.decide(0, s)).collect();
            (acts, plan.events.clone())
        };
        let (a1, e1) = run(cfg.clone());
        let (a2, e2) = run(cfg);
        assert_eq!(a1, a2);
        assert_eq!(e1, e2);
        assert!(e1.iter().any(|e| matches!(e, FaultEvent::Dropped { .. })));
        assert!(e1.iter().any(|e| matches!(e, FaultEvent::Delayed { .. })));
    }

    #[test]
    fn different_seeds_differ() {
        let mut p1 = FaultPlan::new(FaultConfig::new(1).with_drops(0.5), 0);
        let mut p2 = FaultPlan::new(FaultConfig::new(2).with_drops(0.5), 0);
        let a1: Vec<SendAction> = (0..64).map(|s| p1.decide(1, s)).collect();
        let a2: Vec<SendAction> = (0..64).map(|s| p2.decide(1, s)).collect();
        assert_ne!(a1, a2);
    }

    #[test]
    fn fault_cap_silences_the_plan() {
        let mut plan = FaultPlan::new(FaultConfig::new(7).with_drops(1.0).with_fault_cap(3), 0);
        let dropped = (0..100).filter(|&s| plan.decide(1, s) == SendAction::Drop).count();
        assert_eq!(dropped, 3);
        assert_eq!(plan.events().len(), 3);
    }

    #[test]
    fn crash_fires_exactly_once_for_the_right_rank_and_step() {
        let cfg = FaultConfig::new(0).with_crash(2, 17);
        let mut victim = FaultPlan::new(cfg.clone(), 2);
        let mut other = FaultPlan::new(cfg, 1);
        assert!(!victim.crash_due(16));
        assert!(victim.crash_due(17));
        assert!(!victim.crash_due(17), "one-shot: a restarted rank does not re-crash");
        assert!(!other.crash_due(17));
        assert_eq!(victim.events(), &[FaultEvent::Crashed { step: 17 }]);
    }
}
