#![warn(missing_docs)]
//! Message-passing substrate: an MPI-like interface over OS threads.
//!
//! The paper runs on MPI across up to 1.8 million threads. This crate
//! provides the equivalent *functional* layer for laptop-scale distributed
//! runs: a [`World`] spawns one thread per rank, each receiving a
//! [`Communicator`] with ranked point-to-point messaging (tagged,
//! buffered, blocking receives) and the collectives the framework needs
//! (barrier, broadcast, reductions, gather). All simulation code is
//! written against `Communicator`, exactly as an MPI code is written
//! against `MPI_Comm` — the distributed block forest, ghost exchange and
//! time loop do not know they are running on threads.
//!
//! [`ghost`] implements the LBM ghost-layer exchange: for every
//! face/edge/corner link only the PDFs that actually cross that boundary
//! are packed (5 per face cell, 1 per edge cell and none across corners
//! for D3Q19), which is the communication-volume optimization the paper's
//! performance model assumes.
//!
//! [`fault`] adds deterministic, seed-driven fault injection (drop,
//! duplication, reordering, fail-stop rank crash) and the runtime grows
//! the failure machinery on top: fallible/timeout receives returning
//! [`CommError`], dead-rank detection instead of silent deadlock, and
//! the control-plane recovery barrier the resilient driver uses.

pub mod collectives;
pub mod fault;
pub mod ghost;
pub mod runtime;

pub use fault::{CrashSpec, FaultConfig, FaultEvent};
pub use ghost::{
    copy_face_local, pack_face, pack_face_sparse, pack_face_with, pdfs_crossing, unpack_face,
    unpack_face_sparse, unpack_face_with, CrossingTable,
};
pub use runtime::{CommCounters, CommError, Communicator, World};
