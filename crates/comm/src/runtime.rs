//! Ranked threads with tagged, buffered point-to-point messaging.
//!
//! Beyond the MPI-like happy path, the runtime carries the failure
//! machinery the resilient driver builds on:
//!
//! * every blocking receive has a fallible core returning
//!   [`CommError`] — the public infallible wrappers convert failures
//!   into an immediate panic instead of the silent deadlock a crashed
//!   peer used to cause;
//! * timeout variants ([`Communicator::recv_timeout`],
//!   [`Communicator::recv_any_timeout`]) bound every wait;
//! * a poisoned-communicator state: once a peer is known dead (its
//!   panic guard or fail-stop crash broadcast a control note), receives
//!   from it fail fast with [`CommError::RankDown`];
//! * a deterministic fault-injection layer ([`crate::fault`]) threaded
//!   through `send`, plus the control-plane collectives
//!   ([`Communicator::agree_all`], [`Communicator::recovery_sync`]) the
//!   checkpoint/restart protocol uses. Control messages (tags at or
//!   above [`CTRL_TAG_BASE`]) bypass fault injection — they model the
//!   out-of-band failure detector of the host runtime.

use crate::fault::{FaultConfig, FaultEvent, FaultPlan, SendAction};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// A tagged message between ranks.
#[derive(Debug)]
struct Message {
    from: u32,
    /// Per-(sender, destination) sequence number; lets receivers suppress
    /// injected duplicates (TCP-style) without touching tag matching.
    seq: u64,
    tag: u64,
    payload: Vec<u8>,
}

/// Why a receive could not complete.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CommError {
    /// The peer is known to be down (panic guard or fail-stop crash
    /// notification); the awaited message can never arrive.
    RankDown(u32),
    /// No matching message arrived within the timeout.
    Timeout,
    /// The deadline expired while a cohort recovery was pending — a
    /// [`CommError::Timeout`] with a known cause; the caller should
    /// abandon the current step and join recovery.
    Interrupted,
    /// Every channel endpoint is gone: the whole world unwound, so no
    /// message can ever arrive again. Unlike [`CommError::RankDown`]
    /// this blames no specific peer — there is none left to blame.
    WorldDown,
    /// A received frame failed to parse as the protocol message the
    /// receiver expected — a truncated collective frame or a control
    /// note from the wrong epoch. The transport itself is healthy, but
    /// the operation cannot complete; callers treat it like a torn
    /// round and fall back to recovery.
    Protocol,
}

impl std::fmt::Display for CommError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CommError::RankDown(r) => write!(f, "rank {r} is down"),
            CommError::Timeout => write!(f, "receive timed out"),
            CommError::Interrupted => write!(f, "interrupted by a recovery request"),
            CommError::WorldDown => write!(f, "every rank is gone"),
            CommError::Protocol => write!(f, "malformed protocol frame"),
        }
    }
}

impl std::error::Error for CommError {}

/// Tags at or above this value are reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 48;

/// Tags at or above this value are reserved for the control plane
/// (failure notes and the recovery protocol). Control messages bypass
/// fault injection and duplicate suppression.
pub(crate) const CTRL_TAG_BASE: u64 = 1 << 52;

/// Per-sender duplicate-suppression window. One sender's sequence
/// numbers arrive *almost* in order: only injected delays (bounded by
/// the plan's `max_delay` subsequent sends) and duplicates (enqueued
/// adjacent to their original) perturb the stream. Remembering every
/// delivered `(from, seq)` pair would therefore grow linearly with the
/// message count of a long faulted run; instead `recent` keeps only the
/// delivered seqs at or above a moving `frontier` that trails the
/// highest delivery by a span far exceeding the worst-case reorder
/// distance — anything older is final and pruned.
#[derive(Clone, Debug, Default)]
struct DedupWindow {
    /// Seqs below this are settled: delivered (and since pruned) or
    /// dropped by injection — never a fresh arrival.
    frontier: u64,
    /// Delivered seqs at or above `frontier`.
    recent: BTreeSet<u64>,
}

const K_RANKDOWN: u64 = 0;
const K_RECOVER_REQ: u64 = 1;
const K_JOIN: u64 = 2;
const K_GO: u64 = 3;
const K_DONE: u64 = 4;
const K_RESUME: u64 = 5;
const K_AGREE_UP: u64 = 6;
const K_AGREE_DOWN: u64 = 7;

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

/// Checked read of the `i`-th little-endian u64 field of a control
/// payload. Control payloads are built by this module, but a stale or
/// truncated note (replayed across a recovery epoch by a slow peer,
/// or surviving a torn round) must not bring the receiving rank down —
/// callers skip malformed payloads instead of indexing past the end.
fn ctrl_u64(buf: &[u8], i: usize) -> Option<u64> {
    buf.get(i * 8..i * 8 + 8).and_then(|b| b.try_into().ok()).map(u64::from_le_bytes)
}

/// Cumulative send-side traffic counters of one rank, as reported by
/// [`Communicator::counters`]. Counts what this rank *attempted* to
/// send (before fault injection drops anything), which is the load a
/// real network would see.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CommCounters {
    /// Data and collective messages passed to the send path.
    pub messages_sent: u64,
    /// Payload bytes of those messages.
    pub bytes_sent: u64,
    /// Control-plane messages (failure notes, recovery barrier).
    pub ctrl_messages_sent: u64,
}

/// Per-rank communication endpoint — the `MPI_Comm` analogue.
pub struct Communicator {
    rank: u32,
    size: u32,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages waiting for a matching `recv`.
    pending: HashMap<(u32, u64), VecDeque<Vec<u8>>>,
    /// Sequence counter making collective tags unique per operation.
    pub(crate) coll_seq: u64,
    /// Fault-injection plan for this rank's sends (None = clean).
    plan: Option<FaultPlan>,
    /// True when any rank of this world injects faults: enables
    /// receiver-side duplicate suppression.
    dedup: bool,
    /// Next outgoing sequence number per destination.
    seq_out: Vec<u64>,
    /// Data sends per destination (the clock delayed messages are
    /// measured against).
    sends_to: Vec<u64>,
    /// Held-back (delayed) messages per destination: `(due, message)`
    /// where `due` is the `sends_to` count at which to release.
    limbo: Vec<VecDeque<(u64, Message)>>,
    /// Per-sender delivery windows for duplicate suppression (memory
    /// bounded by `dedup_span` per sender, not by total message count).
    seen: Vec<DedupWindow>,
    /// How far each window's frontier trails its highest delivered seq.
    dedup_span: u64,
    /// Peers known to be down.
    dead: HashSet<u32>,
    /// Set when any rank requested a cohort recovery.
    recover_flag: bool,
    /// Parked recovery-protocol messages: `(from, kind, payload)`.
    ctrl: VecDeque<(u32, u64, Vec<u8>)>,
    /// Completed recovery rounds (all ranks agree: rounds are serialized
    /// by the recovery barrier itself).
    recovery_epoch: u64,
    /// Sequence counter for [`Communicator::agree_all`] rounds.
    agree_round: u64,
    /// Send-side traffic totals (see [`CommCounters`]).
    counters: CommCounters,
}

impl Communicator {
    /// This process's rank in `0..size`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Cumulative send-side traffic of this rank so far.
    pub fn counters(&self) -> CommCounters {
        self.counters
    }

    // ---- send path ----------------------------------------------------

    /// Sends `payload` to `to` with a user `tag` (non-blocking, buffered).
    pub fn send(&mut self, to: u32, tag: u64, payload: Vec<u8>) {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
        self.send_raw(to, tag, payload);
    }

    pub(crate) fn send_raw(&mut self, to: u32, tag: u64, payload: Vec<u8>) {
        self.counters.messages_sent += 1;
        self.counters.bytes_sent += payload.len() as u64;
        let t = to as usize;
        let seq = self.seq_out[t];
        self.seq_out[t] += 1;
        let msg = Message { from: self.rank, seq, tag, payload };
        if tag < CTRL_TAG_BASE && self.plan.is_some() {
            self.sends_to[t] += 1;
            match self.plan.as_mut().expect("plan checked").decide(to, seq) {
                SendAction::Drop => {}
                SendAction::Duplicate => {
                    let dup = Message { from: msg.from, seq, tag, payload: msg.payload.clone() };
                    self.push_raw(to, msg);
                    self.push_raw(to, dup);
                }
                SendAction::Delay(k) => {
                    let due = self.sends_to[t] + k as u64;
                    self.limbo[t].push_back((due, msg));
                }
                SendAction::Deliver => self.push_raw(to, msg),
            }
            self.flush_due(to);
            return;
        }
        self.push_raw(to, msg);
    }

    /// Raw channel push. A gone receiver means the peer's thread
    /// unwound (panic): record it as down instead of panicking here.
    fn push_raw(&mut self, to: u32, msg: Message) {
        if self.senders[to as usize].send(msg).is_err() {
            self.dead.insert(to);
        }
    }

    /// Releases limbo messages whose hold-back expired for destination
    /// `to`, preserving their relative order.
    fn flush_due(&mut self, to: u32) {
        let t = to as usize;
        let count = self.sends_to[t];
        let mut i = 0;
        while i < self.limbo[t].len() {
            if self.limbo[t][i].0 <= count {
                if let Some((_, m)) = self.limbo[t].remove(i) {
                    self.push_raw(to, m);
                }
            } else {
                i += 1;
            }
        }
    }

    /// Releases every held-back message. Called before any blocking
    /// receive: a rank about to wait has nothing left to reorder
    /// against, and holding messages across a blocking wait could
    /// deadlock an otherwise correct exchange.
    fn flush_limbo(&mut self) {
        for t in 0..self.limbo.len() {
            while let Some((_, m)) = self.limbo[t].pop_front() {
                self.push_raw(t as u32, m);
            }
        }
    }

    /// Drops every held-back message (fail-stop crash / recovery entry:
    /// the messages are stale by definition).
    fn discard_limbo(&mut self) {
        for q in &mut self.limbo {
            q.clear();
        }
    }

    fn send_ctrl(&mut self, to: u32, kind: u64, payload: Vec<u8>) {
        self.counters.ctrl_messages_sent += 1;
        let t = to as usize;
        let seq = self.seq_out[t];
        self.seq_out[t] += 1;
        self.push_raw(to, Message { from: self.rank, seq, tag: CTRL_TAG_BASE + kind, payload });
    }

    fn broadcast_ctrl(&mut self, kind: u64, payload: &[u8]) {
        for r in 0..self.size {
            if r != self.rank {
                self.send_ctrl(r, kind, payload.to_vec());
            }
        }
    }

    /// Releases every message still held back by the delay fault.
    /// Drivers call this at the end of a send phase, so injected
    /// reordering stays *within* the phase: which messages are in limbo
    /// when a rank later fails is then a function of program points
    /// alone, never of receive timing — a requirement for reproducible
    /// failure traces.
    pub fn flush_delayed(&mut self) {
        self.flush_limbo();
    }

    // ---- receive path -------------------------------------------------

    /// The error for an expired deadline: [`CommError::Interrupted`]
    /// when a cohort recovery is pending (the wait was doomed),
    /// plain [`CommError::Timeout`] otherwise.
    fn timeout_error(&self) -> CommError {
        if self.recover_flag {
            CommError::Interrupted
        } else {
            CommError::Timeout
        }
    }

    /// Routes one raw arrival: control notes update failure state and
    /// return `None`; injected duplicates are suppressed; everything
    /// else passes through for tag matching.
    fn classify(&mut self, m: Message) -> Option<Message> {
        if m.tag >= CTRL_TAG_BASE {
            match m.tag - CTRL_TAG_BASE {
                K_RANKDOWN => {
                    self.dead.insert(m.from);
                }
                K_RECOVER_REQ => {
                    self.recover_flag = true;
                }
                kind => self.ctrl.push_back((m.from, kind, m.payload)),
            }
            return None;
        }
        if self.dedup && self.is_duplicate(m.from, m.seq) {
            return None;
        }
        Some(m)
    }

    /// Receiver-side duplicate test for data message (`from`, `seq`),
    /// recording the delivery. A seq below the sender's frontier, or
    /// already in its window, is a duplicate. The frontier advances to
    /// `highest - dedup_span` on every delivery, pruning the window;
    /// the span comfortably exceeds the worst-case reorder distance
    /// (injected delays hold a message back at most `max_delay`
    /// subsequent sends and limbo is flushed before every blocking
    /// wait; duplicates arrive back-to-back), so a fresh message never
    /// lands behind the frontier.
    fn is_duplicate(&mut self, from: u32, seq: u64) -> bool {
        let w = &mut self.seen[from as usize];
        if seq < w.frontier || !w.recent.insert(seq) {
            return true;
        }
        let highest = *w.recent.iter().next_back().expect("just inserted");
        let lo = highest.saturating_sub(self.dedup_span);
        if lo > w.frontier {
            w.frontier = lo;
            w.recent = w.recent.split_off(&lo);
        }
        false
    }

    /// The matching engine behind every receive: returns the first
    /// available message among `expected` `(from, tag)` pairs
    /// (pending-buffer first, in list order; then arrival order).
    ///
    /// With `deadline == None` the call blocks until a match or a known
    /// failure; with a deadline it additionally fails with
    /// [`CommError::Timeout`] once the deadline passes (reported as
    /// [`CommError::Interrupted`] when a cohort recovery is pending) —
    /// deadline-bearing callers are by construction the resilient paths
    /// that know how to abandon a step.
    ///
    /// Delivery is **availability-first**: failure state is only
    /// consulted once every already-deliverable message has been
    /// matched or parked. This ordering is what makes failure behavior
    /// *deterministic* — whether a receive succeeds depends on what its
    /// peer actually sent before failing, never on how quickly a
    /// failure notification raced the data. Determinism of the per-rank
    /// send counts (and hence of the seed-driven fault trace) rests on
    /// it.
    fn recv_match(
        &mut self,
        expected: &[(u32, u64)],
        deadline: Option<Instant>,
    ) -> Result<(usize, Vec<u8>), CommError> {
        assert!(!expected.is_empty(), "receive needs at least one expected message");
        loop {
            // Pending buffer first, scanned in list order.
            for (i, &(from, tag)) in expected.iter().enumerate() {
                if let Some(q) = self.pending.get_mut(&(from, tag)) {
                    if let Some(m) = q.pop_front() {
                        return Ok((i, m));
                    }
                }
            }
            // Drain whatever already arrived without blocking. Matches
            // are returned in *arrival* order (first match wins), which
            // is what lets the overlapped driver process ghost messages
            // as they come in.
            while let Ok(m) = self.receiver.try_recv() {
                if let Some(m) = self.classify(m) {
                    if let Some(i) = expected.iter().position(|&(f, t)| f == m.from && t == m.tag) {
                        return Ok((i, m.payload));
                    }
                    self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
                }
            }
            // Nothing deliverable: now (and only now) consult failure
            // state — a dead peer can never deliver what is missing.
            if let Some(&(f, _)) = expected.iter().find(|&&(f, _)| self.dead.contains(&f)) {
                return Err(CommError::RankDown(f));
            }
            // About to block: release held-back sends first (see
            // [`Communicator::flush_limbo`]).
            self.flush_limbo();
            let arrival = match deadline {
                None => self.receiver.recv().map_err(|_| {
                    // Every sender dropped: the whole cohort unwound.
                    CommError::WorldDown
                })?,
                Some(dl) => {
                    let now = Instant::now();
                    if now >= dl {
                        return Err(self.timeout_error());
                    }
                    match self.receiver.recv_timeout(dl - now) {
                        Ok(m) => m,
                        Err(RecvTimeoutError::Timeout) => return Err(self.timeout_error()),
                        Err(RecvTimeoutError::Disconnected) => return Err(CommError::WorldDown),
                    }
                }
            };
            if let Some(m) = self.classify(arrival) {
                if let Some(i) = expected.iter().position(|&(f, t)| f == m.from && t == m.tag) {
                    return Ok((i, m.payload));
                }
                self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
            }
        }
    }

    /// Blocking receive of the next message from `from` with `tag`;
    /// messages with other (from, tag) pairs are buffered, so receives in
    /// any order cannot deadlock as long as the matching sends happen.
    ///
    /// Panics (instead of hanging forever) if `from` is known to be
    /// down — use [`Communicator::recv_result`] or
    /// [`Communicator::recv_timeout`] to handle failures.
    pub fn recv(&mut self, from: u32, tag: u64) -> Vec<u8> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
        self.recv_result(from, tag)
            .unwrap_or_else(|e| panic!("rank {}: recv(from={from}, tag={tag}): {e}", self.rank))
    }

    /// Fallible [`Communicator::recv`]: fails fast with
    /// [`CommError::RankDown`] when the peer is known dead instead of
    /// blocking forever.
    pub fn recv_result(&mut self, from: u32, tag: u64) -> Result<Vec<u8>, CommError> {
        self.recv_match(&[(from, tag)], None).map(|(_, m)| m)
    }

    /// [`Communicator::recv_result`] with an upper bound on the wait.
    pub fn recv_timeout(
        &mut self,
        from: u32,
        tag: u64,
        timeout: Duration,
    ) -> Result<Vec<u8>, CommError> {
        self.recv_match(&[(from, tag)], Some(Instant::now() + timeout)).map(|(_, m)| m)
    }

    /// Fallible collective receive: the core every `try_*` collective
    /// builds on. A dead peer or unwound world surfaces as a
    /// [`CommError`] the caller can degrade on, instead of the panic
    /// that would poison every other tenant of the process.
    pub(crate) fn try_recv_raw(&mut self, from: u32, tag: u64) -> Result<Vec<u8>, CommError> {
        self.recv_match(&[(from, tag)], None).map(|(_, m)| m)
    }

    /// Blocking receive of the *first available* message among `expected`
    /// `(from, tag)` pairs — the `MPI_Waitany` analogue. Returns the index
    /// of the matched pair and its payload.
    ///
    /// Already-buffered messages are preferred (scanned in list order);
    /// otherwise the call blocks on the channel and returns messages in
    /// arrival order, buffering non-matching ones. This is what lets the
    /// overlapped driver drain ghost messages as they arrive instead of
    /// stalling on a fixed receive order. FIFO order per `(from, tag)` is
    /// preserved in all cases. Panics if an expected peer is down.
    pub fn recv_any(&mut self, expected: &[(u32, u64)]) -> (usize, Vec<u8>) {
        self.recv_any_result(expected)
            .unwrap_or_else(|e| panic!("rank {}: recv_any: {e}", self.rank))
    }

    /// Fallible [`Communicator::recv_any`].
    pub fn recv_any_result(
        &mut self,
        expected: &[(u32, u64)],
    ) -> Result<(usize, Vec<u8>), CommError> {
        for &(_, tag) in expected {
            assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
        }
        self.recv_match(expected, None)
    }

    /// [`Communicator::recv_any_result`] with an upper bound on the wait.
    pub fn recv_any_timeout(
        &mut self,
        expected: &[(u32, u64)],
        timeout: Duration,
    ) -> Result<(usize, Vec<u8>), CommError> {
        for &(_, tag) in expected {
            assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
        }
        self.recv_match(expected, Some(Instant::now() + timeout))
    }

    /// Non-blocking [`Communicator::recv_any`]: returns the first already
    /// available message among `expected` (pending buffer first, then
    /// whatever has arrived on the channel, buffering non-matches), or
    /// `None` without blocking. Lets the overlapped driver distinguish
    /// messages *hidden* behind compute (already here when asked for)
    /// from genuine stalls.
    pub fn try_recv_any(&mut self, expected: &[(u32, u64)]) -> Option<(usize, Vec<u8>)> {
        for (i, &(from, tag)) in expected.iter().enumerate() {
            assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
            if let Some(q) = self.pending.get_mut(&(from, tag)) {
                if let Some(m) = q.pop_front() {
                    return Some((i, m));
                }
            }
        }
        while let Ok(m) = self.receiver.try_recv() {
            let Some(m) = self.classify(m) else { continue };
            if let Some(i) = expected.iter().position(|&(f, t)| f == m.from && t == m.tag) {
                return Some((i, m.payload));
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
        }
        None
    }

    /// True if a message from `from` with `tag` can be received without
    /// blocking (already buffered or in the channel).
    pub fn try_recv(&mut self, from: u32, tag: u64) -> Option<Vec<u8>> {
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        while let Ok(m) = self.receiver.try_recv() {
            let Some(m) = self.classify(m) else { continue };
            if m.from == from && m.tag == tag {
                return Some(m.payload);
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
        }
        None
    }

    // ---- failure state and the recovery protocol ----------------------

    /// True if `r` is known to be down.
    pub fn is_rank_down(&self, r: u32) -> bool {
        self.dead.contains(&r)
    }

    /// Ranks currently known to be down, ascending.
    pub fn dead_ranks(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.dead.iter().copied().collect();
        v.sort_unstable();
        v
    }

    /// True once any rank requested a cohort recovery (or a fail-stop
    /// crash was observed and converted into a request).
    pub fn recovery_requested(&self) -> bool {
        self.recover_flag
    }

    /// The failure trace injected by this rank's fault plan so far.
    pub fn fault_events(&self) -> Vec<FaultEvent> {
        self.plan.as_ref().map(|p| p.events().to_vec()).unwrap_or_default()
    }

    /// Completed recovery rounds.
    pub fn recovery_epoch(&self) -> u64 {
        self.recovery_epoch
    }

    /// True exactly when this rank's fault plan schedules its fail-stop
    /// crash at the start of `step`. Fires once; the crash is announced
    /// to every peer (the emulated failure detector) and converted into
    /// a recovery request, after which the caller must discard its
    /// volatile state and join [`Communicator::recovery_sync`].
    pub fn crash_due(&mut self, step: u64) -> bool {
        let due = match &mut self.plan {
            Some(p) => p.crash_due(step),
            None => false,
        };
        if due {
            self.discard_limbo();
            self.broadcast_ctrl(K_RANKDOWN, &[]);
            self.broadcast_ctrl(K_RECOVER_REQ, &[]);
            self.recover_flag = true;
        }
        due
    }

    /// Asks the whole cohort to roll back: broadcast a recovery request
    /// (peers observe it via [`CommError::Interrupted`] or
    /// [`Communicator::recovery_requested`]) and mark it locally.
    pub fn request_recovery(&mut self) {
        self.recover_flag = true;
        self.broadcast_ctrl(K_RECOVER_REQ, &[]);
    }

    /// Control-plane receive: first parked message of `kind` (optionally
    /// from a specific rank), pumping the channel until the deadline.
    /// Data messages arriving meanwhile are preserved in the pending
    /// buffer.
    fn recv_ctrl(
        &mut self,
        kind: u64,
        from: Option<u32>,
        deadline: Instant,
    ) -> Result<(u32, Vec<u8>), CommError> {
        loop {
            if let Some(pos) =
                self.ctrl.iter().position(|&(f, k, _)| k == kind && from.map_or(true, |x| x == f))
            {
                if let Some((f, _, p)) = self.ctrl.remove(pos) {
                    return Ok((f, p));
                }
            }
            let now = Instant::now();
            if now >= deadline {
                return Err(CommError::Timeout);
            }
            match self.receiver.recv_timeout(deadline - now) {
                Ok(m) => {
                    if let Some(m) = self.classify(m) {
                        self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
                    }
                }
                Err(RecvTimeoutError::Timeout) => return Err(CommError::Timeout),
                Err(RecvTimeoutError::Disconnected) => return Err(CommError::WorldDown),
            }
        }
    }

    /// Global agreement that the step interval completed cleanly: the
    /// all-ranks AND of `ok`, with every wait bounded by `timeout`. Used
    /// at checkpoint epochs — a `true` verdict means every rank reached
    /// this epoch, so the per-rank checkpoints taken right after form a
    /// globally consistent cut (no data message can be in flight across
    /// it). Runs on the control plane: immune to injected faults and
    /// safe to call while ordinary traffic is failing.
    pub fn agree_all(&mut self, ok: bool, timeout: Duration) -> Result<bool, CommError> {
        // A rank at an agreement point has completed its step interval:
        // nothing is left to reorder against, so release any held-back
        // data first — a neighbor may still be waiting on it.
        self.flush_limbo();
        let deadline = Instant::now() + timeout;
        let round = self.agree_round;
        self.agree_round += 1;
        let mut payload = Vec::with_capacity(16);
        put_u64(&mut payload, round);
        put_u64(&mut payload, ok as u64);
        if self.rank == 0 {
            let mut verdict = ok;
            let mut heard = 1u32;
            while heard < self.size {
                match self.recv_ctrl(K_AGREE_UP, None, deadline) {
                    Ok((_, p)) => {
                        let (Some(r), Some(v)) = (ctrl_u64(&p, 0), ctrl_u64(&p, 1)) else {
                            continue; // truncated vote: ignore like a stale one
                        };
                        if r != round {
                            continue; // stale round: ignore
                        }
                        verdict &= v != 0;
                        heard += 1;
                    }
                    Err(_) => {
                        verdict = false;
                        break;
                    }
                }
            }
            let mut down = Vec::with_capacity(16);
            put_u64(&mut down, round);
            put_u64(&mut down, verdict as u64);
            for r in 1..self.size {
                self.send_ctrl(r, K_AGREE_DOWN, down.clone());
            }
            Ok(verdict)
        } else {
            self.send_ctrl(0, K_AGREE_UP, payload);
            // The verdict for this round is guaranteed to be sent
            // eventually: rank 0 either completes the round or aborts it
            // with `false`, and control notes are never dropped. A
            // timeout therefore only means rank 0 has not reached the
            // round yet — keep waiting, unless a cohort recovery was
            // requested (the round is abandoned; the caller must roll
            // back) or rank 0 is known gone. Giving up early here is
            // what would de-synchronize checkpoints: this rank would
            // skip a snapshot its peers committed.
            loop {
                match self.recv_ctrl(K_AGREE_DOWN, Some(0), Instant::now() + timeout) {
                    Ok((_, p)) => {
                        if ctrl_u64(&p, 0) == Some(round) {
                            // A truncated verdict counts as `false`:
                            // forcing the rollback path is safe, the
                            // panic it used to cause was not.
                            return Ok(ctrl_u64(&p, 1).unwrap_or(0) != 0);
                        }
                    }
                    Err(CommError::Timeout) => {
                        if self.recover_flag {
                            return Err(CommError::Interrupted);
                        }
                        if self.dead.contains(&0) {
                            return Err(CommError::RankDown(0));
                        }
                    }
                    Err(e) => return Err(e),
                }
            }
        }
    }

    /// The cohort recovery barrier. Every rank (including a fail-stop
    /// "crashed" rank, which models a replacement process restarted from
    /// the pool) must call this; it returns once the whole cohort is
    /// synchronized on a clean slate:
    ///
    /// 1. **join** — all ranks report to rank 0 with their collective
    ///    counters; rank 0 releases them with the counter maximum, so
    ///    post-recovery collectives match up even though the ranks had
    ///    drifted;
    /// 2. **drain** — each rank discards every stale data message (all
    ///    pre-recovery traffic is, by construction, already enqueued
    ///    when the release arrives, because every sender stopped sending
    ///    before it joined), clears the pending buffer, duplicate table,
    ///    dead set and recovery flag;
    /// 3. **resume** — a second barrier so no rank re-enters the time
    ///    loop (and sends fresh messages) while a peer is still
    ///    draining.
    ///
    /// The protocol runs entirely on the control plane; `timeout` bounds
    /// every individual wait, so an unrecoverable cohort (a genuinely
    /// panicked rank) surfaces as an error instead of a hang.
    ///
    /// `held_steps` are the checkpoint steps this rank holds locally
    /// (any order); the returned step is the **newest step held by the
    /// whole cohort** — the step every rank must restore. The
    /// intersection is what makes rollback consistent when checkpoint
    /// agreements were torn by failures: consecutive partial commits
    /// can leave the per-rank histories staggered (a rank that kept
    /// committing prunes steps a stalled rank still depends on), so the
    /// negotiation walks the full held sets rather than trusting
    /// newest-minus-one to exist everywhere. If the intersection is
    /// empty (impossible while every rank retains its rollback anchor,
    /// but kept as a defined fallback) the cohort minimum of the
    /// per-rank newest steps is returned; callers must verify they hold
    /// the negotiated step.
    pub fn recovery_sync(
        &mut self,
        timeout: Duration,
        held_steps: &[u64],
    ) -> Result<u64, CommError> {
        let deadline = Instant::now() + timeout;
        self.discard_limbo();
        let epoch = self.recovery_epoch;
        let newest = held_steps.iter().copied().max().unwrap_or(0);
        let mut join = Vec::with_capacity(40 + 8 * held_steps.len());
        put_u64(&mut join, epoch);
        put_u64(&mut join, self.coll_seq);
        put_u64(&mut join, self.agree_round);
        put_u64(&mut join, held_steps.len() as u64);
        for &s in held_steps {
            put_u64(&mut join, s);
        }
        let restore_step;
        if self.rank == 0 {
            let mut max_coll = self.coll_seq;
            let mut max_agree = self.agree_round;
            let mut min_newest = newest;
            let mut common: std::collections::BTreeSet<u64> = held_steps.iter().copied().collect();
            let mut heard = 1u32;
            while heard < self.size {
                let (_, p) = self.recv_ctrl(K_JOIN, None, deadline)?;
                // Recovery epochs are serialized by the barrier itself,
                // but a join from an *older* epoch can linger when a
                // peer timed out of an earlier round this rank never
                // completed — skip it like any stale note. A *newer*
                // epoch means this rank missed a round it cannot lead:
                // the cohort's protocol state is torn beyond repair.
                match ctrl_u64(&p, 0) {
                    Some(e) if e == epoch => {}
                    Some(e) if e > epoch => return Err(CommError::Protocol),
                    _ => continue,
                }
                max_coll = max_coll.max(ctrl_u64(&p, 1).unwrap_or(0));
                max_agree = max_agree.max(ctrl_u64(&p, 2).unwrap_or(0));
                let count = ctrl_u64(&p, 3).unwrap_or(0) as usize;
                let held: std::collections::BTreeSet<u64> =
                    (0..count).filter_map(|i| ctrl_u64(&p, 4 + i)).collect();
                min_newest = min_newest.min(held.iter().copied().max().unwrap_or(0));
                common.retain(|s| held.contains(s));
                heard += 1;
            }
            restore_step = common.iter().copied().max().unwrap_or(min_newest);
            let mut go = Vec::with_capacity(32);
            put_u64(&mut go, epoch);
            put_u64(&mut go, max_coll);
            put_u64(&mut go, max_agree);
            put_u64(&mut go, restore_step);
            for r in 1..self.size {
                self.send_ctrl(r, K_GO, go.clone());
            }
            self.coll_seq = max_coll;
            self.agree_round = max_agree;
        } else {
            self.send_ctrl(0, K_JOIN, join);
            restore_step = loop {
                let (_, p) = self.recv_ctrl(K_GO, Some(0), deadline)?;
                match ctrl_u64(&p, 0) {
                    Some(e) if e == epoch => {
                        // Conservative fallbacks for a torn frame: keep
                        // the local counters (the maximum rule only ever
                        // raises them) and the newest local step.
                        self.coll_seq = ctrl_u64(&p, 1).unwrap_or(self.coll_seq);
                        self.agree_round = ctrl_u64(&p, 2).unwrap_or(self.agree_round);
                        break ctrl_u64(&p, 3).unwrap_or(newest);
                    }
                    Some(e) if e > epoch => return Err(CommError::Protocol),
                    _ => continue, // stale round: ignore
                }
            };
        }
        self.drain_stale();
        if self.rank == 0 {
            for _ in 1..self.size {
                self.recv_ctrl(K_DONE, None, deadline)?;
            }
            for r in 1..self.size {
                self.send_ctrl(r, K_RESUME, Vec::new());
            }
        } else {
            self.send_ctrl(0, K_DONE, Vec::new());
            self.recv_ctrl(K_RESUME, Some(0), deadline)?;
        }
        self.recovery_epoch += 1;
        Ok(restore_step)
    }

    /// Discards all stale pre-recovery state: queued data messages, the
    /// pending buffer, duplicate table, dead set and failure flags.
    /// In-flight `DONE` notes of the running protocol are preserved;
    /// stale failure notes and agreement rounds are dropped (processing
    /// them after the slate is clean would re-trigger recovery forever).
    fn drain_stale(&mut self) {
        while let Ok(m) = self.receiver.try_recv() {
            if m.tag >= CTRL_TAG_BASE && m.tag - CTRL_TAG_BASE == K_DONE {
                self.ctrl.push_back((m.from, K_DONE, m.payload));
            }
        }
        self.ctrl.retain(|&(_, k, _)| k == K_DONE);
        self.pending.clear();
        // Post-recovery seqs only grow, so an empty window (frontier 0)
        // behaves exactly like the pre-recovery full reset did.
        self.seen.fill_with(DedupWindow::default);
        self.dead.clear();
        self.recover_flag = false;
    }
}

impl Drop for Communicator {
    /// The network eventually delivers: any message still held back by
    /// the delay fault when this rank finishes is released, so a
    /// delayed message can be reordered but never lost. (A fail-stop
    /// crash explicitly discards its limbo before this runs.)
    ///
    /// The departure is then announced to every peer. A rank that has
    /// left — whether it panicked or returned cleanly — can never
    /// deliver another message, so peers still blocked on it must
    /// observe [`CommError::RankDown`] instead of hanging; this is what
    /// lets a failure *cascade*: a survivor that errors out and returns
    /// early is itself detected by the ranks waiting on it. Everything
    /// the rank actually sent is already enqueued ahead of the note, so
    /// no deliverable message is lost.
    fn drop(&mut self) {
        self.flush_limbo();
        self.broadcast_ctrl(K_RANKDOWN, &[]);
    }
}

/// A set of ranks executing a closure in parallel — the `MPI_COMM_WORLD`
/// plus `mpirun` analogue.
pub struct World;

impl World {
    /// Spawns `size` ranks, runs `f` on each with its communicator, and
    /// returns the per-rank results, ordered by rank. Panics in any rank
    /// propagate — but a panicking rank first broadcasts a down note, so
    /// surviving ranks blocked on it fail fast instead of deadlocking.
    pub fn run<T, F>(size: u32, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        Self::run_inner(size, None, f)
            .into_iter()
            .map(|r| match r {
                Ok(t) => t,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    }

    /// [`World::run`] with the deterministic fault plan `cfg` installed
    /// on every rank.
    pub fn run_with_faults<T, F>(size: u32, cfg: FaultConfig, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        Self::run_inner(size, Some(cfg), f)
            .into_iter()
            .map(|r| match r {
                Ok(t) => t,
                Err(e) => std::panic::resume_unwind(e),
            })
            .collect()
    }

    /// Panic-tolerant [`World::run`]: a rank that panics yields
    /// `Err(message)` instead of aborting the whole world, and its
    /// panic guard notifies the survivors so their receives fail fast.
    /// Optional faults as in [`World::run_with_faults`].
    pub fn run_fallible<T, F>(size: u32, fault: Option<FaultConfig>, f: F) -> Vec<Result<T, String>>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        Self::run_inner(size, fault, f)
            .into_iter()
            .map(|r| {
                r.map_err(|e| {
                    if let Some(s) = e.downcast_ref::<&str>() {
                        (*s).to_string()
                    } else if let Some(s) = e.downcast_ref::<String>() {
                        s.clone()
                    } else {
                        "rank panicked".to_string()
                    }
                })
            })
            .collect()
    }

    /// Builds the communicator mesh of a fresh `size`-rank cohort
    /// **without spawning any threads** — the re-entrant entry point
    /// multi-tenant schedulers build on. Every call wires a fully
    /// independent world out of its own channels; no process-global
    /// state exists, so any number of cohorts can be constructed and
    /// run concurrently in one process, and their tag spaces, failure
    /// notes and fault plans can never bleed into each other.
    ///
    /// The caller takes over what [`World::run`] otherwise does: move
    /// each communicator onto its own worker (they are `Send`), contain
    /// panics with `catch_unwind` (dropping a communicator mid-unwind
    /// broadcasts the down note, so cohort peers fail fast instead of
    /// hanging), and join the per-rank results.
    pub fn connect(size: u32, fault: Option<FaultConfig>) -> Vec<Communicator> {
        assert!(size > 0);
        let mut senders = Vec::with_capacity(size as usize);
        let mut receivers = Vec::with_capacity(size as usize);
        for _ in 0..size {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let dedup = fault.as_ref().map_or(false, FaultConfig::is_active);
        // Window span: generous slack over the maximum injected
        // hold-back (measured in subsequent sends, each consuming one
        // seq) plus any control traffic interleaved before a flush.
        let dedup_span = fault.as_ref().map_or(0, |c| 1024 + 64 * c.max_delay as u64);
        receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Communicator {
                rank: rank as u32,
                size,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                coll_seq: 0,
                plan: fault.clone().map(|cfg| FaultPlan::new(cfg, rank as u32)),
                dedup,
                seq_out: vec![0; size as usize],
                sends_to: vec![0; size as usize],
                limbo: (0..size).map(|_| VecDeque::new()).collect(),
                seen: vec![DedupWindow::default(); size as usize],
                dedup_span,
                dead: HashSet::new(),
                recover_flag: false,
                ctrl: VecDeque::new(),
                recovery_epoch: 0,
                agree_round: 0,
                counters: CommCounters::default(),
            })
            .collect()
        // `senders` drops here: only the per-rank communicators keep
        // endpoints alive, so a fully unwound cohort is observable as
        // [`CommError::WorldDown`].
    }

    fn run_inner<T, F>(
        size: u32,
        fault: Option<FaultConfig>,
        f: F,
    ) -> Vec<Result<T, Box<dyn std::any::Any + Send>>>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        let comms = Self::connect(size, fault);
        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    // The panic guard's lifeline: clones of every sender,
                    // surviving the communicator's death mid-unwind.
                    let guard = comm.senders.clone();
                    let (rank, size) = (comm.rank, comm.size);
                    scope.spawn(move || {
                        let out =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| f(comm)));
                        if out.is_err() {
                            for r in 0..size {
                                if r != rank {
                                    let _ = guard[r as usize].send(Message {
                                        from: rank,
                                        seq: u64::MAX,
                                        tag: CTRL_TAG_BASE + K_RANKDOWN,
                                        payload: Vec::new(),
                                    });
                                }
                            }
                        }
                        out
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank thread died outside f")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_sizes() {
        let out = World::run(5, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn ring_send_recv() {
        let out = World::run(4, |mut c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 7, vec![c.rank() as u8]);
            let m = c.recv(prev, 7);
            m[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1.
                c.send(1, 2, vec![22]);
                c.send(1, 1, vec![11]);
                0
            } else {
                // Receive in the opposite order.
                let a = c.recv(0, 1);
                let b = c.recv(0, 2);
                (a[0] as u32) * 100 + b[0] as u32
            }
        });
        assert_eq!(out[1], 11 * 100 + 22);
    }

    #[test]
    fn many_messages_preserve_fifo_per_tag() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                for i in 0..100u8 {
                    c.send(1, 5, vec![i]);
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv(0, 5)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<u8>>());
    }

    /// Same-tag messages must stay FIFO even when they detour through the
    /// pending buffer because an out-of-order receive ran first. The
    /// ghost-exchange correctness of step-parity tags rests on this.
    #[test]
    fn fifo_preserved_through_pending_buffer() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![0]);
                c.send(1, 5, vec![1]);
                c.send(1, 6, vec![66]);
                c.send(1, 5, vec![2]);
                vec![]
            } else {
                // Receiving tag 6 first forces the first two tag-5
                // messages through the pending buffer.
                let six = c.recv(0, 6);
                assert_eq!(six, vec![66]);
                (0..3).map(|_| c.recv(0, 5)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], vec![0, 1, 2]);
    }

    /// `recv_any` returns messages in *arrival* order, not in the order
    /// the expected list happens to enumerate them.
    #[test]
    fn recv_any_matches_arrival_order() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 10, vec![10]);
                c.send(1, 11, vec![11]);
                0
            } else {
                // Tag 10 was sent first, so it arrives first even though
                // it is listed second.
                let expected = [(0u32, 11u64), (0u32, 10u64)];
                let (i1, m1) = c.recv_any(&expected);
                let (i2, m2) = c.recv_any(&[expected[0]]);
                assert_eq!((i1, m1), (1, vec![10]));
                assert_eq!((i2, m2), (0, vec![11]));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    /// `recv_any` finds messages already parked in the pending buffer
    /// without touching the channel.
    #[test]
    fn recv_any_prefers_pending_messages() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![33]);
                c.send(1, 4, vec![44]);
                0
            } else {
                // Receiving tag 4 first parks the tag-3 message in the
                // pending buffer; recv_any must then return it instantly.
                assert_eq!(c.recv(0, 4), vec![44]);
                let (i, m) = c.recv_any(&[(0, 3)]);
                assert_eq!((i, m), (0, vec![33]));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    /// `try_recv_any` returns already-arrived messages and never blocks.
    #[test]
    fn try_recv_any_does_not_block() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Rank 1 sends nothing until told to: must be None.
                let empty = c.try_recv_any(&[(1, 7)]).is_none();
                c.send(1, 1, vec![]);
                // Receiving tag 8 parks the earlier tag-7 message in the
                // pending buffer, where try_recv_any must find it.
                let m = c.recv(1, 8);
                assert_eq!(m, vec![88]);
                let found = c.try_recv_any(&[(1, 7)]);
                empty && found == Some((0, vec![77]))
            } else {
                c.recv(0, 1);
                c.send(0, 7, vec![77]);
                c.send(0, 8, vec![88]);
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn try_recv_does_not_block() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Nothing sent yet: must be None.
                let empty = c.try_recv(1, 9).is_none();
                // Synchronize: wait for the real message.
                let m = c.recv(1, 9);
                empty && m == vec![1]
            } else {
                c.send(0, 9, vec![1]);
                true
            }
        });
        assert!(out[0]);
    }

    // ---- failure semantics -------------------------------------------

    /// Regression for the silent deadlock: a peer that panics mid-run
    /// used to leave every other rank blocked in `recv` forever (its
    /// senders stayed alive inside the other communicators). Now the
    /// panic guard broadcasts a down note and survivors fail fast.
    #[test]
    fn peer_panic_fails_receives_fast_instead_of_hanging() {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let out = World::run_fallible(3, None, |mut c| {
                if c.rank() == 1 {
                    panic!("injected rank failure");
                }
                // Both survivors block on the dead rank.
                c.recv_result(1, 5)
            });
            tx.send(out).expect("watchdog channel");
        });
        let out =
            rx.recv_timeout(Duration::from_secs(30)).expect("survivors must error out, not hang");
        assert!(out[1].as_ref().is_err_and(|e| e.contains("injected rank failure")));
        for r in [0, 2] {
            assert_eq!(out[r].as_ref().unwrap(), &Err(CommError::RankDown(1)));
        }
    }

    /// The infallible wrappers convert a down peer into a panic (caught
    /// by `run_fallible`) rather than a hang — and the panic cascades
    /// through ranks that were waiting on the survivors.
    #[test]
    fn rank_down_cascades_through_infallible_recv() {
        let (tx, rx) = std::sync::mpsc::channel();
        std::thread::spawn(move || {
            let out = World::run_fallible(3, None, |mut c| {
                match c.rank() {
                    2 => panic!("boom"),
                    // Rank 1 waits on the victim with the *infallible*
                    // API: it must panic (not hang), which in turn downs
                    // rank 0's wait on rank 1.
                    1 => c.recv(2, 5),
                    _ => c.recv(1, 6),
                }
            });
            tx.send(out).expect("watchdog channel");
        });
        let out = rx.recv_timeout(Duration::from_secs(30)).expect("cascade must terminate");
        assert!(out.iter().all(Result::is_err), "every rank must terminate with an error");
        assert!(out[1].as_ref().unwrap_err().contains("rank 2 is down"));
    }

    #[test]
    fn recv_timeout_expires_without_a_sender() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                let r = c.recv_timeout(1, 3, Duration::from_millis(50));
                // Synchronize so rank 1 cannot finish before the timeout.
                c.send(1, 1, vec![]);
                r == Err(CommError::Timeout)
            } else {
                c.recv(0, 1);
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn dropped_messages_time_out_and_are_traced() {
        let cfg = FaultConfig::new(9).with_drops(1.0).with_fault_cap(1);
        let out = World::run_with_faults(2, cfg, |mut c| {
            if c.rank() == 0 {
                c.send(1, 2, vec![1]); // dropped (first fault)
                c.send(1, 2, vec![2]); // delivered (cap reached)
                c.fault_events().len()
            } else {
                let first = c.recv_timeout(0, 2, Duration::from_millis(2000));
                assert_eq!(first, Ok(vec![2]), "only the second message survives");
                0
            }
        });
        assert_eq!(out[0], 1);
    }

    /// The duplicate-suppression window must not grow with the total
    /// message count: the frontier prunes delivered seqs far behind the
    /// newest one, while every message is still delivered exactly once.
    #[test]
    fn dedup_memory_stays_bounded_over_long_runs() {
        const N: u64 = 20_000;
        let cfg = FaultConfig::new(11).with_duplicates(0.3).with_reordering(0.2, 4);
        let out = World::run_with_faults(2, cfg, |mut c| {
            if c.rank() == 0 {
                for i in 0..N {
                    c.send(1, 1, i.to_le_bytes().to_vec());
                }
                c.flush_delayed();
                c.recv(1, 2);
                0
            } else {
                // Delays reorder same-tag payloads, so check the sum,
                // not the order: dedup must deliver each exactly once.
                let mut sum = 0u64;
                for _ in 0..N {
                    let m = c.recv(0, 1);
                    sum += u64::from_le_bytes(m[..8].try_into().unwrap());
                }
                assert_eq!(sum, N * (N - 1) / 2, "every message exactly once");
                assert!(c.try_recv(0, 1).is_none(), "no stray duplicate survives");
                c.send(0, 2, vec![]);
                c.seen[0].recent.len() as u64
            }
        });
        let window = out[1];
        assert!(window > 0, "deliveries must be recorded");
        assert!(window <= 2_000, "window must stay bounded, got {window} entries after {N} msgs");
    }

    /// Injected duplicates are suppressed by the receiver-side sequence
    /// table: every message is delivered exactly once.
    #[test]
    fn duplicates_are_suppressed() {
        let cfg = FaultConfig::new(5).with_duplicates(1.0);
        let out = World::run_with_faults(2, cfg, |mut c| {
            if c.rank() == 0 {
                for i in 0..20u8 {
                    c.send(1, 4, vec![i]);
                }
                c.recv(1, 9);
                vec![]
            } else {
                let got: Vec<u8> = (0..20).map(|_| c.recv(0, 4)[0]).collect();
                // No 21st copy may exist.
                assert!(c.try_recv(0, 4).is_none());
                c.send(0, 9, vec![]);
                got
            }
        });
        assert_eq!(out[1], (0..20).collect::<Vec<u8>>());
    }

    /// Delayed messages are reordered but never lost: tag matching
    /// absorbs the reordering and FIFO per (from, seq) is restored by
    /// the flush-before-block rule.
    #[test]
    fn reordering_preserves_delivery() {
        for seed in 0..8 {
            let cfg = FaultConfig::new(seed).with_reordering(0.5, 3);
            let out = World::run_with_faults(2, cfg, |mut c| {
                if c.rank() == 0 {
                    for i in 0..30u8 {
                        c.send(1, i as u64, vec![i]);
                    }
                    0u32
                } else {
                    let mut sum = 0u32;
                    for i in 0..30u8 {
                        sum += c.recv(0, i as u64)[0] as u32;
                    }
                    sum
                }
            });
            assert_eq!(out[1], (0..30u32).sum::<u32>(), "seed {seed}");
        }
    }

    /// `agree_all` is the all-ranks AND with bounded waits.
    #[test]
    fn agree_all_ands_votes() {
        let out = World::run(4, |mut c| {
            let first = c.agree_all(true, Duration::from_secs(20)).unwrap();
            let second = c.agree_all(c.rank() != 2, Duration::from_secs(20)).unwrap();
            let third = c.agree_all(true, Duration::from_secs(20)).unwrap();
            (first, second, third)
        });
        for (a, b, d) in out {
            assert!(a);
            assert!(!b);
            assert!(d, "a failed round must not poison later rounds");
        }
    }

    /// A fail-stop crash plus recovery barrier leaves every rank on a
    /// clean slate: stale traffic is drained, the dead set is cleared,
    /// and collective counters line up again.
    #[test]
    fn crash_recovery_cleans_the_slate() {
        let cfg = FaultConfig::new(3).with_crash(1, 0);
        let out = World::run_with_faults(3, cfg, |mut c| {
            let timeout = Duration::from_secs(20);
            if c.crash_due(0) {
                // Victim: volatile state is gone; join recovery directly.
                assert_eq!(c.recovery_sync(timeout, &[0, 5]).unwrap(), 5);
            } else {
                // Survivors: send some soon-stale traffic, then observe
                // the failure and join recovery.
                let peer = if c.rank() == 0 { 2 } else { 0 };
                c.send(peer, 7, vec![c.rank() as u8]);
                let r = c.recv_timeout(1, 9, timeout);
                assert!(matches!(r, Err(CommError::RankDown(1) | CommError::Interrupted)));
                assert_eq!(c.recovery_sync(timeout, &[0, 5]).unwrap(), 5);
            }
            // Clean slate: no stale message may match, no rank is dead,
            // and collectives work again.
            assert!(c.try_recv(0, 7).is_none() && c.try_recv(2, 7).is_none());
            assert!(c.dead_ranks().is_empty());
            assert!(!c.recovery_requested());
            assert_eq!(c.recovery_epoch(), 1);
            c.agree_all(true, timeout).unwrap()
        });
        assert_eq!(out, vec![true, true, true]);
    }

    /// The recovery negotiation picks the newest step held by *every*
    /// rank, even when torn checkpoint commits have staggered the
    /// per-rank histories; with no common step it degrades to the old
    /// min-of-newest rule.
    #[test]
    fn recovery_sync_negotiates_over_held_intersections() {
        let out = World::run(3, |mut c| {
            let timeout = Duration::from_secs(20);
            let held: &[u64] = match c.rank() {
                0 => &[10, 20, 30],
                1 => &[0, 10, 20],
                _ => &[20, 30],
            };
            let common = c.recovery_sync(timeout, held).unwrap();
            let disjoint: &[u64] = match c.rank() {
                0 => &[30],
                1 => &[10],
                _ => &[20],
            };
            let fallback = c.recovery_sync(timeout, disjoint).unwrap();
            (common, fallback)
        });
        for (common, fallback) in out {
            assert_eq!(common, 20, "newest step in everyone's history");
            assert_eq!(fallback, 10, "empty intersection degrades to min-of-newest");
        }
    }
}
