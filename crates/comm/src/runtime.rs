//! Ranked threads with tagged, buffered point-to-point messaging.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::{HashMap, VecDeque};

/// A tagged message between ranks.
#[derive(Debug)]
struct Message {
    from: u32,
    tag: u64,
    payload: Vec<u8>,
}

/// Per-rank communication endpoint — the `MPI_Comm` analogue.
pub struct Communicator {
    rank: u32,
    size: u32,
    senders: Vec<Sender<Message>>,
    receiver: Receiver<Message>,
    /// Out-of-order messages waiting for a matching `recv`.
    pending: HashMap<(u32, u64), VecDeque<Vec<u8>>>,
    /// Sequence counter making collective tags unique per operation.
    pub(crate) coll_seq: u64,
}

impl Communicator {
    /// This process's rank in `0..size`.
    pub fn rank(&self) -> u32 {
        self.rank
    }

    /// Total number of ranks.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Sends `payload` to `to` with a user `tag` (non-blocking, buffered).
    pub fn send(&self, to: u32, tag: u64, payload: Vec<u8>) {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
        self.send_raw(to, tag, payload);
    }

    pub(crate) fn send_raw(&self, to: u32, tag: u64, payload: Vec<u8>) {
        self.senders[to as usize]
            .send(Message { from: self.rank, tag, payload })
            .expect("receiver thread terminated");
    }

    /// Blocking receive of the next message from `from` with `tag`;
    /// messages with other (from, tag) pairs are buffered, so receives in
    /// any order cannot deadlock as long as the matching sends happen.
    pub fn recv(&mut self, from: u32, tag: u64) -> Vec<u8> {
        assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
        self.recv_raw(from, tag)
    }

    pub(crate) fn recv_raw(&mut self, from: u32, tag: u64) -> Vec<u8> {
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if let Some(m) = q.pop_front() {
                return m;
            }
        }
        loop {
            let m = self.receiver.recv().expect("all senders dropped while receiving");
            if m.from == from && m.tag == tag {
                return m.payload;
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
        }
    }

    /// Blocking receive of the *first available* message among `expected`
    /// `(from, tag)` pairs — the `MPI_Waitany` analogue. Returns the index
    /// of the matched pair and its payload.
    ///
    /// Already-buffered messages are preferred (scanned in list order);
    /// otherwise the call blocks on the channel and returns messages in
    /// arrival order, buffering non-matching ones. This is what lets the
    /// overlapped driver drain ghost messages as they arrive instead of
    /// stalling on a fixed receive order. FIFO order per `(from, tag)` is
    /// preserved in all cases.
    pub fn recv_any(&mut self, expected: &[(u32, u64)]) -> (usize, Vec<u8>) {
        assert!(!expected.is_empty(), "recv_any needs at least one expected message");
        for (i, &(from, tag)) in expected.iter().enumerate() {
            assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
            if let Some(q) = self.pending.get_mut(&(from, tag)) {
                if let Some(m) = q.pop_front() {
                    return (i, m);
                }
            }
        }
        loop {
            let m = self.receiver.recv().expect("all senders dropped while receiving");
            if let Some(i) = expected.iter().position(|&(f, t)| f == m.from && t == m.tag) {
                return (i, m.payload);
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
        }
    }

    /// Non-blocking [`Communicator::recv_any`]: returns the first already
    /// available message among `expected` (pending buffer first, then
    /// whatever has arrived on the channel, buffering non-matches), or
    /// `None` without blocking. Lets the overlapped driver distinguish
    /// messages *hidden* behind compute (already here when asked for)
    /// from genuine stalls.
    pub fn try_recv_any(&mut self, expected: &[(u32, u64)]) -> Option<(usize, Vec<u8>)> {
        for (i, &(from, tag)) in expected.iter().enumerate() {
            assert!(tag < COLLECTIVE_TAG_BASE, "user tags must stay below the collective range");
            if let Some(q) = self.pending.get_mut(&(from, tag)) {
                if let Some(m) = q.pop_front() {
                    return Some((i, m));
                }
            }
        }
        while let Ok(m) = self.receiver.try_recv() {
            if let Some(i) = expected.iter().position(|&(f, t)| f == m.from && t == m.tag) {
                return Some((i, m.payload));
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
        }
        None
    }

    /// True if a message from `from` with `tag` can be received without
    /// blocking (already buffered or in the channel).
    pub fn try_recv(&mut self, from: u32, tag: u64) -> Option<Vec<u8>> {
        if let Some(q) = self.pending.get_mut(&(from, tag)) {
            if let Some(m) = q.pop_front() {
                return Some(m);
            }
        }
        while let Ok(m) = self.receiver.try_recv() {
            if m.from == from && m.tag == tag {
                return Some(m.payload);
            }
            self.pending.entry((m.from, m.tag)).or_default().push_back(m.payload);
        }
        None
    }
}

/// Tags at or above this value are reserved for collectives.
pub(crate) const COLLECTIVE_TAG_BASE: u64 = 1 << 48;

/// A set of ranks executing a closure in parallel — the `MPI_COMM_WORLD`
/// plus `mpirun` analogue.
pub struct World;

impl World {
    /// Spawns `size` ranks, runs `f` on each with its communicator, and
    /// returns the per-rank results, ordered by rank. Panics in any rank
    /// propagate.
    pub fn run<T, F>(size: u32, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        assert!(size > 0);
        let mut senders = Vec::with_capacity(size as usize);
        let mut receivers = Vec::with_capacity(size as usize);
        for _ in 0..size {
            let (s, r) = unbounded();
            senders.push(s);
            receivers.push(r);
        }
        let mut comms: Vec<Communicator> = receivers
            .into_iter()
            .enumerate()
            .map(|(rank, receiver)| Communicator {
                rank: rank as u32,
                size,
                senders: senders.clone(),
                receiver,
                pending: HashMap::new(),
                coll_seq: 0,
            })
            .collect();
        drop(senders);

        std::thread::scope(|scope| {
            let f = &f;
            let handles: Vec<_> =
                comms.drain(..).map(|comm| scope.spawn(move || f(comm))).collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_and_sizes() {
        let out = World::run(5, |c| (c.rank(), c.size()));
        assert_eq!(out, vec![(0, 5), (1, 5), (2, 5), (3, 5), (4, 5)]);
    }

    #[test]
    fn ring_send_recv() {
        let out = World::run(4, |mut c| {
            let next = (c.rank() + 1) % 4;
            let prev = (c.rank() + 3) % 4;
            c.send(next, 7, vec![c.rank() as u8]);
            let m = c.recv(prev, 7);
            m[0]
        });
        assert_eq!(out, vec![3, 0, 1, 2]);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Send tag 2 first, then tag 1.
                c.send(1, 2, vec![22]);
                c.send(1, 1, vec![11]);
                0
            } else {
                // Receive in the opposite order.
                let a = c.recv(0, 1);
                let b = c.recv(0, 2);
                (a[0] as u32) * 100 + b[0] as u32
            }
        });
        assert_eq!(out[1], 11 * 100 + 22);
    }

    #[test]
    fn many_messages_preserve_fifo_per_tag() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                for i in 0..100u8 {
                    c.send(1, 5, vec![i]);
                }
                vec![]
            } else {
                (0..100).map(|_| c.recv(0, 5)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], (0..100).collect::<Vec<u8>>());
    }

    /// Same-tag messages must stay FIFO even when they detour through the
    /// pending buffer because an out-of-order receive ran first. The
    /// ghost-exchange correctness of step-parity tags rests on this.
    #[test]
    fn fifo_preserved_through_pending_buffer() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![0]);
                c.send(1, 5, vec![1]);
                c.send(1, 6, vec![66]);
                c.send(1, 5, vec![2]);
                vec![]
            } else {
                // Receiving tag 6 first forces the first two tag-5
                // messages through the pending buffer.
                let six = c.recv(0, 6);
                assert_eq!(six, vec![66]);
                (0..3).map(|_| c.recv(0, 5)[0]).collect::<Vec<u8>>()
            }
        });
        assert_eq!(out[1], vec![0, 1, 2]);
    }

    /// `recv_any` returns messages in *arrival* order, not in the order
    /// the expected list happens to enumerate them.
    #[test]
    fn recv_any_matches_arrival_order() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 10, vec![10]);
                c.send(1, 11, vec![11]);
                0
            } else {
                // Tag 10 was sent first, so it arrives first even though
                // it is listed second.
                let expected = [(0u32, 11u64), (0u32, 10u64)];
                let (i1, m1) = c.recv_any(&expected);
                let (i2, m2) = c.recv_any(&[expected[0]]);
                assert_eq!((i1, m1), (1, vec![10]));
                assert_eq!((i2, m2), (0, vec![11]));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    /// `recv_any` finds messages already parked in the pending buffer
    /// without touching the channel.
    #[test]
    fn recv_any_prefers_pending_messages() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                c.send(1, 3, vec![33]);
                c.send(1, 4, vec![44]);
                0
            } else {
                // Receiving tag 4 first parks the tag-3 message in the
                // pending buffer; recv_any must then return it instantly.
                assert_eq!(c.recv(0, 4), vec![44]);
                let (i, m) = c.recv_any(&[(0, 3)]);
                assert_eq!((i, m), (0, vec![33]));
                1
            }
        });
        assert_eq!(out, vec![0, 1]);
    }

    /// `try_recv_any` returns already-arrived messages and never blocks.
    #[test]
    fn try_recv_any_does_not_block() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Rank 1 sends nothing until told to: must be None.
                let empty = c.try_recv_any(&[(1, 7)]).is_none();
                c.send(1, 1, vec![]);
                // Receiving tag 8 parks the earlier tag-7 message in the
                // pending buffer, where try_recv_any must find it.
                let m = c.recv(1, 8);
                assert_eq!(m, vec![88]);
                let found = c.try_recv_any(&[(1, 7)]);
                empty && found == Some((0, vec![77]))
            } else {
                c.recv(0, 1);
                c.send(0, 7, vec![77]);
                c.send(0, 8, vec![88]);
                true
            }
        });
        assert!(out[0]);
    }

    #[test]
    fn try_recv_does_not_block() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Nothing sent yet: must be None.
                let empty = c.try_recv(1, 9).is_none();
                // Synchronize: wait for the real message.
                let m = c.recv(1, 9);
                empty && m == vec![1]
            } else {
                c.send(0, 9, vec![1]);
                true
            }
        });
        assert!(out[0]);
    }
}
