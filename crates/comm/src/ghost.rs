//! Ghost-layer exchange for PDF fields between neighboring blocks.
//!
//! In every time step the ghost layer of each block is synchronized with
//! the boundary cells of its neighbors (paper §2.2). Only the PDFs that
//! actually stream across the shared boundary are transferred: for a face
//! link those whose velocity matches the link direction in the nonzero
//! axes (5 per cell for D3Q19), for an edge link exactly one, and none for
//! corner links — D3Q19 has no corner velocities, so corner messages are
//! never sent.

use bytes::{Buf, BufMut};
use trillium_field::PdfField;
use trillium_lattice::LatticeModel;

/// The directions whose PDFs must be transferred across a block link in
/// direction `d`: all `q` with `c_q[a] == d[a]` on every axis `a` where
/// `d[a] != 0`.
pub fn pdfs_crossing<M: LatticeModel>(d: [i8; 3]) -> Vec<usize> {
    (1..M::Q)
        .filter(|&q| {
            let c = M::velocities()[q];
            (0..3).all(|a| d[a] == 0 || c[a] == d[a])
        })
        .collect()
}

/// Precomputed [`pdfs_crossing`] sets for all 26 link directions.
///
/// `pdfs_crossing` allocates a fresh `Vec` per call; computing it once per
/// link per time step put a heap allocation on the ghost-exchange fast
/// path. Build this table once at setup and hand its slices to
/// [`pack_face_with`] / [`unpack_face_with`] instead.
#[derive(Clone, Debug)]
pub struct CrossingTable {
    /// Indexed by `(d0+1)*9 + (d1+1)*3 + (d2+1)`; the center entry is empty.
    sets: Vec<Vec<usize>>,
}

impl CrossingTable {
    /// Builds the table for lattice model `M`.
    pub fn new<M: LatticeModel>() -> Self {
        let mut sets = Vec::with_capacity(27);
        for dx in -1i8..=1 {
            for dy in -1i8..=1 {
                for dz in -1i8..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        sets.push(Vec::new());
                    } else {
                        sets.push(pdfs_crossing::<M>([dx, dy, dz]));
                    }
                }
            }
        }
        CrossingTable { sets }
    }

    /// The crossing-PDF set for link direction `d`.
    #[inline(always)]
    pub fn qs(&self, d: [i8; 3]) -> &[usize] {
        &self.sets[((d[0] + 1) as usize * 9) + ((d[1] + 1) as usize * 3) + (d[2] + 1) as usize]
    }

    /// The crossing-PDF set for the *reversed* direction `-d` — the set
    /// [`unpack_face_with`] needs for data received from direction `d`.
    #[inline(always)]
    pub fn qs_reversed(&self, d: [i8; 3]) -> &[usize] {
        self.qs([-d[0], -d[1], -d[2]])
    }
}

/// Packs the PDFs crossing toward the neighbor in direction `d` from the
/// sender's boundary slab into `buf` (little-endian `f64`).
pub fn pack_face<M: LatticeModel, F: PdfField<M>>(f: &F, d: [i8; 3], buf: &mut Vec<u8>) {
    let qs = pdfs_crossing::<M>(d);
    pack_face_with::<M, F>(f, d, &qs, buf);
}

/// Allocation-free variant of [`pack_face`]: the caller supplies the
/// crossing set (from a [`CrossingTable`]) and a reusable buffer, which is
/// appended to (clear it first to reuse across steps).
pub fn pack_face_with<M: LatticeModel, F: PdfField<M>>(
    f: &F,
    d: [i8; 3],
    qs: &[usize],
    buf: &mut Vec<u8>,
) {
    let shape = f.shape();
    let region = shape.boundary_slab(d, shape.ghost);
    buf.reserve(region.num_cells() * qs.len() * 8);
    for (x, y, z) in region.iter() {
        for &q in qs {
            buf.put_f64_le(f.get(x, y, z, q));
        }
    }
}

/// Unpacks data received *from* the neighbor in direction `d` into the
/// receiver's ghost slab in direction `d`. The sender must have packed
/// with direction `-d`; cell order and PDF sets then match exactly.
pub fn unpack_face<M: LatticeModel, F: PdfField<M>>(f: &mut F, d: [i8; 3], data: &[u8]) {
    // The receiver needs the PDFs pointing from the ghost slab into the
    // interior, which are exactly those the sender packed with `-d`.
    let qs = pdfs_crossing::<M>([-d[0], -d[1], -d[2]]);
    unpack_face_with::<M, F>(f, d, &qs, data);
}

/// Allocation-free variant of [`unpack_face`]: the caller supplies the
/// *reversed* crossing set ([`CrossingTable::qs_reversed`] of `d`).
pub fn unpack_face_with<M: LatticeModel, F: PdfField<M>>(
    f: &mut F,
    d: [i8; 3],
    qs: &[usize],
    data: &[u8],
) {
    let shape = f.shape();
    let region = shape.ghost_slab(d, shape.ghost);
    assert_eq!(data.len(), region.num_cells() * qs.len() * 8, "ghost message size mismatch");
    let mut buf = data;
    for (x, y, z) in region.iter() {
        for &q in qs {
            f.set(x, y, z, q, buf.get_f64_le());
        }
    }
}

/// Packs only the PDFs of *fluid* cells in the boundary slab toward the
/// neighbor in direction `d`, preceded by a bitmap of which slab cells
/// are included. This is the fluid-aware communication the paper
/// explicitly does *not* do ("our communication scheme is unaware of
/// fluid lattice cells and therefore the amount of data communicated
/// between neighboring blocks is the same as for densely populated
/// blocks", §4.3) — provided here as the ablation/extension, with
/// [`unpack_face_sparse`] as its inverse. For sparse vascular blocks this
/// shrinks face messages by the (1 − fluid fraction) of the slab at the
/// cost of one bit per slab cell and data-dependent message sizes.
pub fn pack_face_sparse<M: LatticeModel, F: PdfField<M>>(
    f: &F,
    flags: &trillium_field::FlagField,
    d: [i8; 3],
    buf: &mut Vec<u8>,
) {
    use trillium_field::FlagOps;
    let shape = f.shape();
    let region = shape.boundary_slab(d, shape.ghost);
    let qs = pdfs_crossing::<M>(d);
    // Bitmap header: one bit per slab cell, slab order.
    let ncells = region.num_cells();
    let mut bitmap = vec![0u8; ncells.div_ceil(8)];
    for (i, (x, y, z)) in region.iter().enumerate() {
        if flags.flags(x, y, z).is_fluid() {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&bitmap);
    for (x, y, z) in region.iter() {
        if flags.flags(x, y, z).is_fluid() {
            for &q in &qs {
                buf.put_f64_le(f.get(x, y, z, q));
            }
        }
    }
}

/// Unpacks a message produced by [`pack_face_sparse`] (sender direction
/// `-d`) into the ghost slab in direction `d`; ghost cells absent from
/// the bitmap keep their previous values.
pub fn unpack_face_sparse<M: LatticeModel, F: PdfField<M>>(f: &mut F, d: [i8; 3], data: &[u8]) {
    let shape = f.shape();
    let region = shape.ghost_slab(d, shape.ghost);
    let qs = pdfs_crossing::<M>([-d[0], -d[1], -d[2]]);
    let ncells = region.num_cells();
    let header = ncells.div_ceil(8);
    assert!(data.len() >= header, "sparse ghost message too short");
    let (bitmap, mut buf) = data.split_at(header);
    for (i, (x, y, z)) in region.iter().enumerate() {
        if bitmap[i / 8] & (1 << (i % 8)) != 0 {
            for &q in &qs {
                f.set(x, y, z, q, buf.get_f64_le());
            }
        }
    }
    assert!(buf.is_empty(), "sparse ghost message has trailing bytes");
}

/// Direct ghost copy between two blocks owned by the same process:
/// `dst` has `src` as its neighbor in direction `d`.
pub fn copy_face_local<M: LatticeModel, A: PdfField<M>, B: PdfField<M>>(
    src: &A,
    dst: &mut B,
    d: [i8; 3],
) {
    // Equivalent to pack on src toward −d, unpack on dst from d, without
    // the byte round trip.
    let sregion = src.shape().boundary_slab([-d[0], -d[1], -d[2]], src.shape().ghost);
    let dregion = dst.shape().ghost_slab(d, dst.shape().ghost);
    let qs = pdfs_crossing::<M>([-d[0], -d[1], -d[2]]);
    assert_eq!(sregion.num_cells(), dregion.num_cells(), "block size mismatch across link");
    for ((sx, sy, sz), (dx, dy, dz)) in sregion.iter().zip(dregion.iter()) {
        for &q in &qs {
            dst.set(dx, dy, dz, q, src.get(sx, sy, sz, q));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trillium_field::{AosPdfField, Shape};
    use trillium_lattice::{d3q19::dir, D3Q19};

    #[test]
    fn crossing_sets_have_paper_sizes() {
        // Face: 5 PDFs, edge: 1 PDF, corner: 0 PDFs for D3Q19.
        assert_eq!(pdfs_crossing::<D3Q19>([1, 0, 0]).len(), 5);
        assert_eq!(pdfs_crossing::<D3Q19>([0, -1, 0]).len(), 5);
        assert_eq!(pdfs_crossing::<D3Q19>([1, 1, 0]).len(), 1);
        assert_eq!(pdfs_crossing::<D3Q19>([-1, 0, 1]).len(), 1);
        assert_eq!(pdfs_crossing::<D3Q19>([1, 1, 1]).len(), 0);
        // The face set for +x is exactly the east-pointing PDFs.
        let qs = pdfs_crossing::<D3Q19>([1, 0, 0]);
        for q in [dir::E, dir::NE, dir::SE, dir::TE, dir::BE] {
            assert!(qs.contains(&q));
        }
    }

    /// Two blocks side by side in x: pack/unpack must place block A's east
    /// boundary PDFs into block B's west ghost cells so B's pull gets them.
    #[test]
    fn pack_unpack_transfers_boundary_to_ghost() {
        let shape = Shape::cube(4);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        let mut b = AosPdfField::<D3Q19>::new(shape);
        // Tag A's east boundary cells with recognizable values.
        for (x, y, z) in shape.boundary_slab([1, 0, 0], 1).iter() {
            for q in 0..19 {
                a.set(x, y, z, q, 1000.0 + (y * 4 + z) as f64 + q as f64 * 0.01);
            }
        }
        // A is B's neighbor in direction −x: A packs toward +x.
        let mut buf = Vec::new();
        pack_face::<D3Q19, _>(&a, [1, 0, 0], &mut buf);
        unpack_face::<D3Q19, _>(&mut b, [-1, 0, 0], &buf);

        let qs = pdfs_crossing::<D3Q19>([1, 0, 0]);
        for (x, y, z) in shape.ghost_slab([-1, 0, 0], 1).iter() {
            for &q in &qs {
                // B's ghost cell (−1, y, z) mirrors A's boundary (3, y, z).
                assert_eq!(b.get(x, y, z, q), a.get(3, y, z, q), "q={q} at ({x},{y},{z})");
            }
            // PDFs not crossing stay untouched.
            assert_eq!(b.get(x, y, z, dir::W), 0.0);
        }
    }

    /// Ghost exchange across an *edge* link (D3Q19: exactly one PDF per
    /// cell) and a *corner* link (D3Q19: nothing; D3Q27: one PDF). Edge
    /// and corner slabs are thin — one cell line / one cell — and index
    /// bugs there don't show up in face-only tests.
    #[test]
    fn edge_and_corner_links_transfer_exactly_their_pdfs() {
        use trillium_lattice::{LatticeModel, D3Q27};
        let shape = Shape::cube(4);

        // --- edge [1, 1, 0] on D3Q19: the single NE-pointing PDF -------
        let mut a = AosPdfField::<D3Q19>::new(shape);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                a.set(x, y, z, q, (x + 10 * y + 100 * z) as f64 + 0.001 * q as f64);
            }
        }
        let mut b = AosPdfField::<D3Q19>::new(shape);
        let mut buf = Vec::new();
        pack_face::<D3Q19, _>(&a, [1, 1, 0], &mut buf);
        // The edge slab is a 1×1×4 line of cells carrying one PDF each.
        assert_eq!(buf.len(), 4 * 8);
        unpack_face::<D3Q19, _>(&mut b, [-1, -1, 0], &buf);
        let qs = pdfs_crossing::<D3Q19>([1, 1, 0]);
        assert_eq!(qs, vec![dir::NE]);
        let sslab = shape.boundary_slab([1, 1, 0], 1);
        let gslab = shape.ghost_slab([-1, -1, 0], 1);
        for ((sx, sy, sz), (gx, gy, gz)) in sslab.iter().zip(gslab.iter()) {
            assert_eq!(b.get(gx, gy, gz, dir::NE), a.get(sx, sy, sz, dir::NE));
            // Everything else in the ghost cell stays zero.
            for q in (0..19).filter(|&q| q != dir::NE) {
                assert_eq!(b.get(gx, gy, gz, q), 0.0, "q={q} leaked across the edge");
            }
        }

        // --- corner [1, 1, 1] ------------------------------------------
        // D3Q19 has no corner velocities: the message is empty.
        assert!(pdfs_crossing::<D3Q19>([1, 1, 1]).is_empty());
        let mut buf = Vec::new();
        pack_face::<D3Q19, _>(&a, [1, 1, 1], &mut buf);
        assert!(buf.is_empty(), "D3Q19 corner message must carry nothing");

        // D3Q27 has one: the (1,1,1) velocity, for the single corner cell.
        let q27 = pdfs_crossing::<D3Q27>([1, 1, 1]);
        assert_eq!(q27.len(), 1);
        assert_eq!(D3Q27::velocities()[q27[0]], [1, 1, 1]);
        let mut a27 = AosPdfField::<D3Q27>::new(shape);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..27 {
                a27.set(x, y, z, q, (x + 10 * y + 100 * z) as f64 + 0.001 * q as f64);
            }
        }
        let mut b27 = AosPdfField::<D3Q27>::new(shape);
        let mut buf = Vec::new();
        pack_face::<D3Q27, _>(&a27, [1, 1, 1], &mut buf);
        assert_eq!(buf.len(), 8, "one corner cell, one PDF");
        unpack_face::<D3Q27, _>(&mut b27, [-1, -1, -1], &buf);
        // Corner boundary cell (3,3,3) lands in ghost cell (−1,−1,−1).
        assert_eq!(b27.get(-1, -1, -1, q27[0]), a27.get(3, 3, 3, q27[0]));
        let others = (0..27).filter(|&q| q != q27[0]);
        for q in others {
            assert_eq!(b27.get(-1, -1, -1, q), 0.0, "q={q} leaked across the corner");
        }
    }

    #[test]
    fn local_copy_equals_pack_unpack() {
        let shape = Shape::cube(5);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                a.set(x, y, z, q, (x + 10 * y + 100 * z) as f64 + q as f64 * 0.001);
            }
        }
        // Route 1: bytes.
        let mut b1 = AosPdfField::<D3Q19>::new(shape);
        let mut buf = Vec::new();
        pack_face::<D3Q19, _>(&a, [0, 1, 0], &mut buf);
        unpack_face::<D3Q19, _>(&mut b1, [0, -1, 0], &buf);
        // Route 2: direct copy (a is b2's neighbor in −y).
        let mut b2 = AosPdfField::<D3Q19>::new(shape);
        copy_face_local::<D3Q19, _, _>(&a, &mut b2, [0, -1, 0]);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                assert_eq!(b1.get(x, y, z, q), b2.get(x, y, z, q));
            }
        }
    }

    /// Sparse packing transfers exactly the fluid cells' PDFs and leaves
    /// other ghost values untouched; on a fully fluid slab it matches the
    /// dense path values.
    #[test]
    fn sparse_pack_unpack_matches_dense_on_fluid() {
        use trillium_field::{CellFlags, FlagField, FlagOps};
        let shape = Shape::cube(4);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                a.set(x, y, z, q, (x + 5 * y + 25 * z) as f64 + 0.01 * q as f64);
            }
        }
        // Half the east boundary slab is fluid.
        let mut flags = FlagField::new(shape);
        for (x, y, z) in shape.boundary_slab([1, 0, 0], 1).iter() {
            if (y + z) % 2 == 0 {
                flags.set_flags(x, y, z, CellFlags::FLUID);
            }
        }
        let mut sparse = Vec::new();
        pack_face_sparse::<D3Q19, _>(&a, &flags, [1, 0, 0], &mut sparse);
        let mut dense = Vec::new();
        pack_face::<D3Q19, _>(&a, [1, 0, 0], &mut dense);
        // 8 of 16 slab cells are fluid: payload halves (plus 2 bitmap bytes).
        assert_eq!(sparse.len(), 2 + dense.len() / 2);

        // Receiver: pre-fill ghosts with a sentinel, then unpack.
        let mut b = AosPdfField::<D3Q19>::new(shape);
        for (x, y, z) in shape.ghost_slab([-1, 0, 0], 1).iter() {
            for q in 0..19 {
                b.set(x, y, z, q, -7.0);
            }
        }
        unpack_face_sparse::<D3Q19, _>(&mut b, [-1, 0, 0], &sparse);
        let qs = pdfs_crossing::<D3Q19>([1, 0, 0]);
        for (x, y, z) in shape.ghost_slab([-1, 0, 0], 1).iter() {
            let fluid = (y + z) % 2 == 0;
            for &q in &qs {
                if fluid {
                    assert_eq!(b.get(x, y, z, q), a.get(3, y, z, q));
                } else {
                    assert_eq!(b.get(x, y, z, q), -7.0, "non-fluid ghost must keep its value");
                }
            }
        }
    }

    /// The precomputed table must agree with `pdfs_crossing` for every
    /// link direction, in both orientations.
    #[test]
    fn crossing_table_matches_per_call_computation() {
        let table = CrossingTable::new::<D3Q19>();
        for dx in -1i8..=1 {
            for dy in -1i8..=1 {
                for dz in -1i8..=1 {
                    if dx == 0 && dy == 0 && dz == 0 {
                        assert!(table.qs([0, 0, 0]).is_empty());
                        continue;
                    }
                    let d = [dx, dy, dz];
                    assert_eq!(table.qs(d), pdfs_crossing::<D3Q19>(d).as_slice());
                    assert_eq!(
                        table.qs_reversed(d),
                        pdfs_crossing::<D3Q19>([-dx, -dy, -dz]).as_slice()
                    );
                }
            }
        }
    }

    #[test]
    fn edge_link_sends_single_pdf() {
        let shape = Shape::cube(3);
        let a = AosPdfField::<D3Q19>::new(shape);
        let mut buf = Vec::new();
        pack_face::<D3Q19, _>(&a, [1, 1, 0], &mut buf);
        // 3 cells along the edge × 1 PDF × 8 bytes.
        assert_eq!(buf.len(), 3 * 8);
    }

    #[test]
    fn corner_link_sends_nothing() {
        let shape = Shape::cube(3);
        let a = AosPdfField::<D3Q19>::new(shape);
        let mut buf = Vec::new();
        pack_face::<D3Q19, _>(&a, [1, -1, 1], &mut buf);
        assert!(buf.is_empty());
    }
}
