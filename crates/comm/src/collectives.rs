//! Collective operations built on the point-to-point layer.
//!
//! Simple linear (root-based) algorithms: the thread substrate has no
//! network, so collective *performance* does not matter here — only the
//! semantics the framework code relies on. Every collective consumes one
//! sequence number so back-to-back collectives with identical shapes
//! cannot cross-match.

use crate::runtime::{Communicator, COLLECTIVE_TAG_BASE};

impl Communicator {
    fn next_coll_tag(&mut self) -> u64 {
        let tag = COLLECTIVE_TAG_BASE + self.coll_seq;
        self.coll_seq += 1;
        tag
    }

    /// Synchronizes all ranks: no rank leaves before every rank entered.
    pub fn barrier(&mut self) {
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            for r in 1..self.size() {
                let _ = self.recv_raw(r, tag);
            }
            for r in 1..self.size() {
                self.send_raw(r, tag, Vec::new());
            }
        } else {
            self.send_raw(0, tag, Vec::new());
            let _ = self.recv_raw(0, tag);
        }
    }

    /// Broadcasts `data` from `root` to every rank; returns the payload on
    /// all ranks. This mirrors the paper's setup where one process reads
    /// the block-structure file or the surface mesh and broadcasts the
    /// bytes.
    pub fn broadcast(&mut self, root: u32, data: Option<Vec<u8>>) -> Vec<u8> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let data = data.expect("root must provide the broadcast payload");
            for r in 0..self.size() {
                if r != root {
                    self.send_raw(r, tag, data.clone());
                }
            }
            data
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// Gathers one `f64` from every rank onto all ranks (allgather),
    /// ordered by rank.
    pub fn allgather_f64(&mut self, value: f64) -> Vec<f64> {
        let bytes = self.allgather_bytes(value.to_le_bytes().to_vec());
        bytes
            .into_iter()
            .map(|b| f64::from_le_bytes(b.try_into().expect("8-byte payload")))
            .collect()
    }

    /// Gathers one byte payload from every rank onto all ranks, ordered by
    /// rank.
    pub fn allgather_bytes(&mut self, data: Vec<u8>) -> Vec<Vec<u8>> {
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            let mut all = vec![Vec::new(); self.size() as usize];
            all[0] = data;
            for r in 1..self.size() {
                all[r as usize] = self.recv_raw(r, tag);
            }
            // Concatenate with a tiny length-prefixed framing for redistribution.
            let mut frame = Vec::new();
            for a in &all {
                frame.extend_from_slice(&(a.len() as u64).to_le_bytes());
                frame.extend_from_slice(a);
            }
            for r in 1..self.size() {
                self.send_raw(r, tag, frame.clone());
            }
            all
        } else {
            self.send_raw(0, tag, data);
            let frame = self.recv_raw(0, tag);
            let mut all = Vec::with_capacity(self.size() as usize);
            let mut off = 0usize;
            for _ in 0..self.size() {
                let len = u64::from_le_bytes(frame[off..off + 8].try_into().unwrap()) as usize;
                off += 8;
                all.push(frame[off..off + len].to_vec());
                off += len;
            }
            all
        }
    }

    /// All-reduce of a single `f64` with summation.
    pub fn allreduce_sum_f64(&mut self, value: f64) -> f64 {
        self.allgather_f64(value).iter().sum()
    }

    /// All-reduce of a single `f64` with maximum.
    pub fn allreduce_max_f64(&mut self, value: f64) -> f64 {
        self.allgather_f64(value).into_iter().fold(f64::NEG_INFINITY, f64::max)
    }

    /// Fused all-reduce of a single `f64` under min, max, and sum at once
    /// (one collective round instead of three). This is the load-imbalance
    /// probe: with per-rank epoch cost `t`, the imbalance ratio is
    /// `max * size / sum` and the spread is `max / min`.
    pub fn allreduce_minmaxsum_f64(&mut self, value: f64) -> (f64, f64, f64) {
        let all = self.allgather_f64(value);
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for v in all {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        (min, max, sum)
    }

    /// Gathers one byte payload from every rank onto `root` only (other
    /// ranks receive an empty vector). Rank-ordered on the root.
    pub fn gather_bytes(&mut self, root: u32, data: Vec<u8>) -> Vec<Vec<u8>> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut all = vec![Vec::new(); self.size() as usize];
            all[root as usize] = data;
            for r in 0..self.size() {
                if r != root {
                    all[r as usize] = self.recv_raw(r, tag);
                }
            }
            all
        } else {
            self.send_raw(root, tag, data);
            Vec::new()
        }
    }

    /// Scatters per-rank byte payloads from `root`: rank `i` receives
    /// `chunks[i]`. Non-root ranks pass `None`.
    pub fn scatter_bytes(&mut self, root: u32, chunks: Option<Vec<Vec<u8>>>) -> Vec<u8> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let chunks = chunks.expect("root must provide the scatter payloads");
            assert_eq!(chunks.len(), self.size() as usize, "one chunk per rank");
            let mut mine = Vec::new();
            for (r, chunk) in chunks.into_iter().enumerate() {
                if r as u32 == root {
                    mine = chunk;
                } else {
                    self.send_raw(r as u32, tag, chunk);
                }
            }
            mine
        } else {
            self.recv_raw(root, tag)
        }
    }

    /// All-reduce of a single `u64` with summation.
    pub fn allreduce_sum_u64(&mut self, value: u64) -> u64 {
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            let mut sum = value;
            for r in 1..self.size() {
                let b = self.recv_raw(r, tag);
                sum += u64::from_le_bytes(b.try_into().unwrap());
            }
            for r in 1..self.size() {
                self.send_raw(r, tag, sum.to_le_bytes().to_vec());
            }
            sum
        } else {
            self.send_raw(0, tag, value.to_le_bytes().to_vec());
            u64::from_le_bytes(self.recv_raw(0, tag).try_into().unwrap())
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::runtime::World;

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let phase1 = AtomicU32::new(0);
        let violations = AtomicU32::new(0);
        World::run(8, |mut c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier, every rank must have completed phase 1.
            if phase1.load(Ordering::SeqCst) != 8 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = World::run(4, |mut c| {
            let payload = if c.rank() == 2 { Some(vec![9, 8, 7]) } else { None };
            c.broadcast(2, payload)
        });
        for o in out {
            assert_eq!(o, vec![9, 8, 7]);
        }
    }

    #[test]
    fn allgather_is_rank_ordered() {
        let out = World::run(5, |mut c| c.allgather_f64(c.rank() as f64 * 1.5));
        for o in out {
            assert_eq!(o, vec![0.0, 1.5, 3.0, 4.5, 6.0]);
        }
    }

    #[test]
    fn reductions() {
        let sums = World::run(6, |mut c| c.allreduce_sum_f64((c.rank() + 1) as f64));
        assert!(sums.iter().all(|&s| s == 21.0));
        let maxs = World::run(6, |mut c| c.allreduce_max_f64(-(c.rank() as f64)));
        assert!(maxs.iter().all(|&m| m == 0.0));
        let usums = World::run(4, |mut c| c.allreduce_sum_u64(1 << c.rank()));
        assert!(usums.iter().all(|&s| s == 0b1111));
    }

    #[test]
    fn fused_minmaxsum_reduction() {
        let out = World::run(5, |mut c| c.allreduce_minmaxsum_f64((c.rank() + 1) as f64));
        for (min, max, sum) in out {
            assert_eq!(min, 1.0);
            assert_eq!(max, 5.0);
            assert_eq!(sum, 15.0);
        }
    }

    #[test]
    fn gather_and_scatter() {
        let out = World::run(4, |mut c| {
            // Gather rank-tagged payloads onto rank 1.
            let gathered = c.gather_bytes(1, vec![c.rank() as u8; (c.rank() + 1) as usize]);
            if c.rank() == 1 {
                assert_eq!(gathered[0], vec![0]);
                assert_eq!(gathered[2], vec![2, 2, 2]);
                assert_eq!(gathered[3], vec![3, 3, 3, 3]);
            } else {
                assert!(gathered.is_empty());
            }
            // Scatter distinct chunks from rank 0.
            let chunks = if c.rank() == 0 {
                Some((0..4u8).map(|r| vec![r * 10, r * 10 + 1]).collect())
            } else {
                None
            };
            c.scatter_bytes(0, chunks)
        });
        for (r, chunk) in out.iter().enumerate() {
            assert_eq!(chunk, &vec![r as u8 * 10, r as u8 * 10 + 1]);
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        let out = World::run(3, |mut c| {
            let a = c.allreduce_sum_f64(1.0);
            let b = c.allreduce_sum_f64(10.0);
            c.barrier();
            let d = c.allreduce_max_f64(c.rank() as f64);
            (a, b, d)
        });
        for (a, b, d) in out {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
            assert_eq!(d, 2.0);
        }
    }
}
