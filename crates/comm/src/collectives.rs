//! Collective operations built on the point-to-point layer.
//!
//! Simple linear (root-based) algorithms: the thread substrate has no
//! network, so collective *performance* does not matter here — only the
//! semantics the framework code relies on. Every collective consumes one
//! sequence number so back-to-back collectives with identical shapes
//! cannot cross-match.
//!
//! Each collective has a fallible `try_*` core returning [`CommError`]
//! when a participant is down or a frame is torn, plus the historical
//! infallible wrapper that converts failure into a panic. The resilient
//! driver and the multi-tenant job runner use the `try_*` forms so a
//! dead cohort degrades into an error its own controller handles,
//! instead of a panic that poisons every other tenant of the process.

use crate::runtime::{CommError, Communicator, COLLECTIVE_TAG_BASE};

/// Parses an exactly-8-byte frame; anything else is a torn collective.
fn frame_u64(b: &[u8]) -> Result<u64, CommError> {
    b.try_into().map(u64::from_le_bytes).map_err(|_| CommError::Protocol)
}

/// Parses an exactly-8-byte frame as `f64`.
fn frame_f64(b: &[u8]) -> Result<f64, CommError> {
    b.try_into().map(f64::from_le_bytes).map_err(|_| CommError::Protocol)
}

impl Communicator {
    fn next_coll_tag(&mut self) -> u64 {
        let tag = COLLECTIVE_TAG_BASE + self.coll_seq;
        self.coll_seq += 1;
        tag
    }

    /// Reports a collective failure the way the infallible wrappers
    /// always have: by panicking with the rank and operation attached.
    fn coll_panic<T>(&self, op: &str, e: CommError) -> T {
        panic!("rank {}: collective {op}: {e}", self.rank())
    }

    /// Fallible [`Communicator::barrier`].
    pub fn try_barrier(&mut self) -> Result<(), CommError> {
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            for r in 1..self.size() {
                let _ = self.try_recv_raw(r, tag)?;
            }
            for r in 1..self.size() {
                self.send_raw(r, tag, Vec::new());
            }
        } else {
            self.send_raw(0, tag, Vec::new());
            let _ = self.try_recv_raw(0, tag)?;
        }
        Ok(())
    }

    /// Synchronizes all ranks: no rank leaves before every rank entered.
    pub fn barrier(&mut self) {
        if let Err(e) = self.try_barrier() {
            self.coll_panic("barrier", e)
        }
    }

    /// Fallible [`Communicator::broadcast`].
    pub fn try_broadcast(
        &mut self,
        root: u32,
        data: Option<Vec<u8>>,
    ) -> Result<Vec<u8>, CommError> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let data = data.expect("root must provide the broadcast payload");
            for r in 0..self.size() {
                if r != root {
                    self.send_raw(r, tag, data.clone());
                }
            }
            Ok(data)
        } else {
            self.try_recv_raw(root, tag)
        }
    }

    /// Broadcasts `data` from `root` to every rank; returns the payload on
    /// all ranks. This mirrors the paper's setup where one process reads
    /// the block-structure file or the surface mesh and broadcasts the
    /// bytes.
    pub fn broadcast(&mut self, root: u32, data: Option<Vec<u8>>) -> Vec<u8> {
        self.try_broadcast(root, data).unwrap_or_else(|e| self.coll_panic("broadcast", e))
    }

    /// Fallible [`Communicator::allgather_f64`].
    pub fn try_allgather_f64(&mut self, value: f64) -> Result<Vec<f64>, CommError> {
        let bytes = self.try_allgather_bytes(value.to_le_bytes().to_vec())?;
        bytes.into_iter().map(|b| frame_f64(&b)).collect()
    }

    /// Gathers one `f64` from every rank onto all ranks (allgather),
    /// ordered by rank.
    pub fn allgather_f64(&mut self, value: f64) -> Vec<f64> {
        self.try_allgather_f64(value).unwrap_or_else(|e| self.coll_panic("allgather_f64", e))
    }

    /// Fallible [`Communicator::allgather_bytes`].
    pub fn try_allgather_bytes(&mut self, data: Vec<u8>) -> Result<Vec<Vec<u8>>, CommError> {
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            let mut all = vec![Vec::new(); self.size() as usize];
            all[0] = data;
            for r in 1..self.size() {
                all[r as usize] = self.try_recv_raw(r, tag)?;
            }
            // Concatenate with a tiny length-prefixed framing for redistribution.
            let mut frame = Vec::new();
            for a in &all {
                frame.extend_from_slice(&(a.len() as u64).to_le_bytes());
                frame.extend_from_slice(a);
            }
            for r in 1..self.size() {
                self.send_raw(r, tag, frame.clone());
            }
            Ok(all)
        } else {
            self.send_raw(0, tag, data);
            let frame = self.try_recv_raw(0, tag)?;
            let mut all = Vec::with_capacity(self.size() as usize);
            let mut off = 0usize;
            for _ in 0..self.size() {
                let len_bytes = frame.get(off..off + 8).ok_or(CommError::Protocol)?;
                let len = frame_u64(len_bytes)? as usize;
                off += 8;
                all.push(frame.get(off..off + len).ok_or(CommError::Protocol)?.to_vec());
                off += len;
            }
            Ok(all)
        }
    }

    /// Gathers one byte payload from every rank onto all ranks, ordered by
    /// rank.
    pub fn allgather_bytes(&mut self, data: Vec<u8>) -> Vec<Vec<u8>> {
        self.try_allgather_bytes(data).unwrap_or_else(|e| self.coll_panic("allgather_bytes", e))
    }

    /// Fallible [`Communicator::allreduce_sum_f64`].
    pub fn try_allreduce_sum_f64(&mut self, value: f64) -> Result<f64, CommError> {
        Ok(self.try_allgather_f64(value)?.iter().sum())
    }

    /// All-reduce of a single `f64` with summation.
    pub fn allreduce_sum_f64(&mut self, value: f64) -> f64 {
        self.try_allreduce_sum_f64(value).unwrap_or_else(|e| self.coll_panic("allreduce_sum", e))
    }

    /// Fallible [`Communicator::allreduce_max_f64`].
    pub fn try_allreduce_max_f64(&mut self, value: f64) -> Result<f64, CommError> {
        Ok(self.try_allgather_f64(value)?.into_iter().fold(f64::NEG_INFINITY, f64::max))
    }

    /// All-reduce of a single `f64` with maximum.
    pub fn allreduce_max_f64(&mut self, value: f64) -> f64 {
        self.try_allreduce_max_f64(value).unwrap_or_else(|e| self.coll_panic("allreduce_max", e))
    }

    /// Fallible [`Communicator::allreduce_minmaxsum_f64`].
    pub fn try_allreduce_minmaxsum_f64(
        &mut self,
        value: f64,
    ) -> Result<(f64, f64, f64), CommError> {
        let all = self.try_allgather_f64(value)?;
        let mut min = f64::INFINITY;
        let mut max = f64::NEG_INFINITY;
        let mut sum = 0.0;
        for v in all {
            min = min.min(v);
            max = max.max(v);
            sum += v;
        }
        Ok((min, max, sum))
    }

    /// Fused all-reduce of a single `f64` under min, max, and sum at once
    /// (one collective round instead of three). This is the load-imbalance
    /// probe: with per-rank epoch cost `t`, the imbalance ratio is
    /// `max * size / sum` and the spread is `max / min`.
    pub fn allreduce_minmaxsum_f64(&mut self, value: f64) -> (f64, f64, f64) {
        self.try_allreduce_minmaxsum_f64(value)
            .unwrap_or_else(|e| self.coll_panic("allreduce_minmaxsum", e))
    }

    /// Fallible [`Communicator::gather_bytes`].
    pub fn try_gather_bytes(
        &mut self,
        root: u32,
        data: Vec<u8>,
    ) -> Result<Vec<Vec<u8>>, CommError> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let mut all = vec![Vec::new(); self.size() as usize];
            all[root as usize] = data;
            for r in 0..self.size() {
                if r != root {
                    all[r as usize] = self.try_recv_raw(r, tag)?;
                }
            }
            Ok(all)
        } else {
            self.send_raw(root, tag, data);
            Ok(Vec::new())
        }
    }

    /// Gathers one byte payload from every rank onto `root` only (other
    /// ranks receive an empty vector). Rank-ordered on the root.
    pub fn gather_bytes(&mut self, root: u32, data: Vec<u8>) -> Vec<Vec<u8>> {
        self.try_gather_bytes(root, data).unwrap_or_else(|e| self.coll_panic("gather_bytes", e))
    }

    /// Fallible [`Communicator::scatter_bytes`].
    pub fn try_scatter_bytes(
        &mut self,
        root: u32,
        chunks: Option<Vec<Vec<u8>>>,
    ) -> Result<Vec<u8>, CommError> {
        let tag = self.next_coll_tag();
        if self.rank() == root {
            let chunks = chunks.expect("root must provide the scatter payloads");
            assert_eq!(chunks.len(), self.size() as usize, "one chunk per rank");
            let mut mine = Vec::new();
            for (r, chunk) in chunks.into_iter().enumerate() {
                if r as u32 == root {
                    mine = chunk;
                } else {
                    self.send_raw(r as u32, tag, chunk);
                }
            }
            Ok(mine)
        } else {
            self.try_recv_raw(root, tag)
        }
    }

    /// Scatters per-rank byte payloads from `root`: rank `i` receives
    /// `chunks[i]`. Non-root ranks pass `None`.
    pub fn scatter_bytes(&mut self, root: u32, chunks: Option<Vec<Vec<u8>>>) -> Vec<u8> {
        self.try_scatter_bytes(root, chunks).unwrap_or_else(|e| self.coll_panic("scatter_bytes", e))
    }

    /// Fallible [`Communicator::allreduce_sum_u64`].
    pub fn try_allreduce_sum_u64(&mut self, value: u64) -> Result<u64, CommError> {
        let tag = self.next_coll_tag();
        if self.rank() == 0 {
            let mut sum = value;
            for r in 1..self.size() {
                let b = self.try_recv_raw(r, tag)?;
                sum += frame_u64(&b)?;
            }
            for r in 1..self.size() {
                self.send_raw(r, tag, sum.to_le_bytes().to_vec());
            }
            Ok(sum)
        } else {
            self.send_raw(0, tag, value.to_le_bytes().to_vec());
            let b = self.try_recv_raw(0, tag)?;
            frame_u64(&b)
        }
    }

    /// All-reduce of a single `u64` with summation.
    pub fn allreduce_sum_u64(&mut self, value: u64) -> u64 {
        self.try_allreduce_sum_u64(value)
            .unwrap_or_else(|e| self.coll_panic("allreduce_sum_u64", e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runtime::World;

    #[test]
    fn barrier_orders_phases() {
        use std::sync::atomic::{AtomicU32, Ordering};
        let phase1 = AtomicU32::new(0);
        let violations = AtomicU32::new(0);
        World::run(8, |mut c| {
            phase1.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier, every rank must have completed phase 1.
            if phase1.load(Ordering::SeqCst) != 8 {
                violations.fetch_add(1, Ordering::SeqCst);
            }
        });
        assert_eq!(violations.load(std::sync::atomic::Ordering::SeqCst), 0);
    }

    #[test]
    fn broadcast_from_nonzero_root() {
        let out = World::run(4, |mut c| {
            let payload = if c.rank() == 2 { Some(vec![9, 8, 7]) } else { None };
            c.broadcast(2, payload)
        });
        for o in out {
            assert_eq!(o, vec![9, 8, 7]);
        }
    }

    #[test]
    fn allgather_is_rank_ordered() {
        let out = World::run(5, |mut c| c.allgather_f64(c.rank() as f64 * 1.5));
        for o in out {
            assert_eq!(o, vec![0.0, 1.5, 3.0, 4.5, 6.0]);
        }
    }

    #[test]
    fn reductions() {
        let sums = World::run(6, |mut c| c.allreduce_sum_f64((c.rank() + 1) as f64));
        assert!(sums.iter().all(|&s| s == 21.0));
        let maxs = World::run(6, |mut c| c.allreduce_max_f64(-(c.rank() as f64)));
        assert!(maxs.iter().all(|&m| m == 0.0));
        let usums = World::run(4, |mut c| c.allreduce_sum_u64(1 << c.rank()));
        assert!(usums.iter().all(|&s| s == 0b1111));
    }

    #[test]
    fn fused_minmaxsum_reduction() {
        let out = World::run(5, |mut c| c.allreduce_minmaxsum_f64((c.rank() + 1) as f64));
        for (min, max, sum) in out {
            assert_eq!(min, 1.0);
            assert_eq!(max, 5.0);
            assert_eq!(sum, 15.0);
        }
    }

    #[test]
    fn gather_and_scatter() {
        let out = World::run(4, |mut c| {
            // Gather rank-tagged payloads onto rank 1.
            let gathered = c.gather_bytes(1, vec![c.rank() as u8; (c.rank() + 1) as usize]);
            if c.rank() == 1 {
                assert_eq!(gathered[0], vec![0]);
                assert_eq!(gathered[2], vec![2, 2, 2]);
                assert_eq!(gathered[3], vec![3, 3, 3, 3]);
            } else {
                assert!(gathered.is_empty());
            }
            // Scatter distinct chunks from rank 0.
            let chunks = if c.rank() == 0 {
                Some((0..4u8).map(|r| vec![r * 10, r * 10 + 1]).collect())
            } else {
                None
            };
            c.scatter_bytes(0, chunks)
        });
        for (r, chunk) in out.iter().enumerate() {
            assert_eq!(chunk, &vec![r as u8 * 10, r as u8 * 10 + 1]);
        }
    }

    #[test]
    fn consecutive_collectives_do_not_cross_match() {
        let out = World::run(3, |mut c| {
            let a = c.allreduce_sum_f64(1.0);
            let b = c.allreduce_sum_f64(10.0);
            c.barrier();
            let d = c.allreduce_max_f64(c.rank() as f64);
            (a, b, d)
        });
        for (a, b, d) in out {
            assert_eq!(a, 3.0);
            assert_eq!(b, 30.0);
            assert_eq!(d, 2.0);
        }
    }

    /// The fallible collectives surface a dead peer as `CommError`
    /// instead of a panic: the cohort degrades, the process survives.
    ///
    /// Collective failure is *not uniform* (exactly as in MPI): a rank
    /// that errors out of a collective stops relaying, so survivors must
    /// never be made to wait on each other across a failed collective.
    /// Both scenarios below keep every survivor's failure path rooted
    /// directly at the dead rank.
    #[test]
    fn try_collectives_degrade_on_a_dead_peer() {
        // Scenario A: the root survives its (only) peer — every recv in
        // the root arm of each collective hits the dead rank directly.
        let out = World::run_fallible(2, None, |mut c| {
            if c.rank() == 1 {
                panic!("injected rank failure");
            }
            // Wait for the down note so the failure is already known.
            let r = c.recv_timeout(1, 1, std::time::Duration::from_secs(20));
            assert!(r.is_err(), "rank 1 never sends");
            let barrier = c.try_barrier();
            let gather = c.try_allgather_bytes(vec![c.rank() as u8]);
            let reduce = c.try_allreduce_sum_u64(1);
            (barrier, gather.map(|v| v.len()), reduce)
        });
        let (barrier, gather, reduce) = out[0].as_ref().expect("root returns cleanly");
        assert!(
            matches!(barrier, Err(CommError::RankDown(1) | CommError::WorldDown)),
            "{barrier:?}"
        );
        assert!(gather.is_err() && reduce.is_err());

        // Scenario B: the root dies; each non-root survivor waits only
        // on the dead root (sends to it are dropped, never block), so
        // the survivors degrade independently of one another.
        let out = World::run_fallible(3, None, |mut c| {
            if c.rank() == 0 {
                panic!("injected root failure");
            }
            let r = c.recv_timeout(0, 1, std::time::Duration::from_secs(20));
            assert!(r.is_err(), "rank 0 never sends");
            let barrier = c.try_barrier();
            let gather = c.try_allgather_bytes(vec![c.rank() as u8]);
            let reduce = c.try_allreduce_sum_u64(1);
            (barrier, gather.map(|v| v.len()), reduce)
        });
        for r in [1, 2] {
            let (barrier, gather, reduce) = out[r].as_ref().expect("survivors return cleanly");
            assert!(
                matches!(barrier, Err(CommError::RankDown(0) | CommError::WorldDown)),
                "{barrier:?}"
            );
            assert!(gather.is_err() && reduce.is_err());
        }
    }

    /// A torn length-prefixed allgather frame parses to
    /// `CommError::Protocol` instead of slicing out of bounds.
    #[test]
    fn torn_allgather_frame_is_a_protocol_error() {
        let out = World::run(2, |mut c| {
            if c.rank() == 0 {
                // Rank 0 impersonates the allgather root but sends a
                // frame whose length prefix overruns the payload.
                let _ = c.try_recv_raw(1, COLLECTIVE_TAG_BASE);
                let mut frame = Vec::new();
                frame.extend_from_slice(&1000u64.to_le_bytes());
                frame.extend_from_slice(&[1, 2, 3]);
                c.send_raw(1, COLLECTIVE_TAG_BASE, frame);
                Ok(0usize)
            } else {
                c.try_allgather_bytes(vec![7]).map(|v| v.len())
            }
        });
        assert_eq!(out[1], Err(CommError::Protocol), "{:?}", out[1]);
    }
}
