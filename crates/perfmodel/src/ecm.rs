//! The Execution–Cache–Memory (ECM) model (Treibig & Hager; paper §4.1).
//!
//! The single-core runtime of a bandwidth-limited loop kernel is split
//! into three contributions, accounted in CPU cycles per unit of work
//! (here: eight lattice-cell updates, one cache line of each PDF stream):
//!
//! 1. `t_core` — in-core execution assuming all data in L1,
//! 2. `t_cache` — cache-line transfers through the cache hierarchy
//!    (the paper counts 57 cache lines × 2 cycles × 2 inter-cache hops),
//! 3. `t_mem` — transfers over the memory interface, converted from the
//!    measured (concurrent-stream) bandwidth into cycles.
//!
//! With the no-overlap assumption the contributions add. Multi-core
//! scaling is linear until the memory interface saturates at the roofline
//! bound; clock frequency scales `t_core` and `t_cache` (cycles take
//! longer) but not the memory time, which is why a lower clock costs so
//! little for this kernel — the basis for the paper's 1.6 GHz
//! energy-optimal operating point (Fig 4).

/// Work unit: eight lattice-cell updates (one AVX cache line per stream).
pub const LUPS_PER_UNIT: f64 = 8.0;
/// Cache lines moved per work unit by the two-field pull update:
/// 19 loads + 19 stores + 19 write-allocates.
pub const CACHELINES_PER_UNIT: f64 = 57.0;
/// Cache lines moved per work unit by the in-place (AA-pattern) update:
/// 19 loads + 19 stores. The stores hit the very lines the loads just
/// brought in — same buffer, same addresses — so the write-allocate
/// stream disappears along with the second field.
pub const CACHELINES_PER_UNIT_INPLACE: f64 = 38.0;

/// ECM model of one kernel on one machine.
#[derive(Copy, Clone, Debug)]
pub struct EcmModel {
    /// In-core cycles per work unit (IACA-style static analysis or
    /// calibrated from a single-core measurement).
    pub t_core_cycles: f64,
    /// Inter-cache transfer cycles per work unit (2 cycles per cache line
    /// per hop; 2 hops on Sandy Bridge: L1↔L2, L2↔L3).
    pub t_cache_cycles: f64,
    /// Clock frequency in GHz.
    pub clock_ghz: f64,
    /// Saturated memory bandwidth under the kernel's access pattern, GiB/s.
    pub mem_bw_gib: f64,
    /// Cache lines over the memory interface per work unit — the traffic
    /// term that separates the update schemes ([`CACHELINES_PER_UNIT`]
    /// for pull, [`CACHELINES_PER_UNIT_INPLACE`] for in-place).
    pub cachelines_per_unit: f64,
}

impl EcmModel {
    /// The paper's SuperMUC TRT-SIMD model: IACA reports 448 in-core
    /// cycles per 8 updates; 57 cache lines × 2 cycles × 2 hops = 228
    /// cache cycles. We additionally calibrate an in-L1 load/store
    /// component such that the single-core prediction matches the paper's
    /// Fig 4 measurement (≈15 MLUPS at 2.7 GHz); the calibration constant
    /// is documented in EXPERIMENTS.md.
    pub fn supermuc_trt_simd(clock_ghz: f64) -> Self {
        EcmModel {
            t_core_cycles: 448.0 + 412.0, // IACA + calibrated L1 traffic
            t_cache_cycles: 228.0,
            clock_ghz,
            mem_bw_gib: Self::supermuc_bw_at(clock_ghz),
            cachelines_per_unit: CACHELINES_PER_UNIT,
        }
    }

    /// The same machine running the in-place (AA-pattern) update: the
    /// in-core work is unchanged (same moments, same collision, same
    /// SIMD recipe), but only [`CACHELINES_PER_UNIT_INPLACE`] lines per
    /// unit cross each cache level and the memory interface. Both the
    /// inter-cache term and the memory/roofline terms scale with the
    /// traffic ratio.
    pub fn inplace(self) -> Self {
        let ratio = CACHELINES_PER_UNIT_INPLACE / self.cachelines_per_unit;
        EcmModel {
            t_cache_cycles: self.t_cache_cycles * ratio,
            cachelines_per_unit: CACHELINES_PER_UNIT_INPLACE,
            ..self
        }
    }

    /// Bytes over the memory interface per lattice-cell update under
    /// this model's traffic term (456 B for pull D3Q19, 304 B in-place).
    pub fn bytes_per_lup(&self) -> f64 {
        self.cachelines_per_unit * 64.0 / LUPS_PER_UNIT
    }

    /// Predicted in-place/pull speedup on `n` cores of this machine.
    /// Single-core the gain is diluted by the unchanged in-core time; at
    /// socket saturation it approaches the pure traffic ratio 57/38 = 1.5.
    pub fn inplace_speedup(&self, n: u32) -> f64 {
        self.inplace().mlups(n) / self.mlups(n)
    }

    /// SuperMUC's memory bandwidth depends (slightly) on the core clock
    /// (paper cites Schöne et al.; "the main memory bandwidth decreases
    /// slightly at lower clock frequencies"). Linear interpolation through
    /// the two published operating points: 37.3 GiB/s at 2.7 GHz and 7 %
    /// less at 1.6 GHz (the "performance penalty of 7 %" of Fig 4).
    pub fn supermuc_bw_at(clock_ghz: f64) -> f64 {
        let (f0, b0) = (1.6, 37.3 * 0.93);
        let (f1, b1) = (2.7, 37.3);
        b0 + (clock_ghz - f0) * (b1 - b0) / (f1 - f0)
    }

    /// Single-core cycles per work unit (no-overlap sum).
    pub fn cycles_per_unit(&self) -> f64 {
        self.t_core_cycles + self.t_cache_cycles + self.mem_cycles_per_unit()
    }

    /// Memory-transfer cycles per work unit at this clock.
    pub fn mem_cycles_per_unit(&self) -> f64 {
        let bytes = self.cachelines_per_unit * 64.0;
        let secs = bytes / (self.mem_bw_gib * 1024.0 * 1024.0 * 1024.0);
        secs * self.clock_ghz * 1e9
    }

    /// Predicted single-core performance in MLUPS.
    pub fn single_core_mlups(&self) -> f64 {
        self.clock_ghz * 1e9 * LUPS_PER_UNIT / self.cycles_per_unit() / 1e6
    }

    /// This model's roofline bound in MLUPS: the memory bandwidth divided
    /// by the traffic term. Identical to
    /// [`roofline_mlups`](crate::roofline::roofline_mlups) for the pull
    /// update (57 lines/unit ⇒ 456 B/LUP); proportionally higher for the
    /// in-place update's 38.
    pub fn roofline(&self) -> f64 {
        self.mem_bw_gib * 1024.0 * 1024.0 * 1024.0 / self.bytes_per_lup() / 1e6
    }

    /// Predicted performance of `n` cores in MLUPS: linear scaling capped
    /// by the roofline bound.
    pub fn mlups(&self, n: u32) -> f64 {
        (n as f64 * self.single_core_mlups()).min(self.roofline())
    }

    /// Number of cores needed to saturate the memory interface.
    pub fn cores_to_saturate(&self) -> u32 {
        (self.roofline() / self.single_core_mlups()).ceil() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_core_matches_calibration_point() {
        let m = EcmModel::supermuc_trt_simd(2.7);
        let p1 = m.single_core_mlups();
        assert!((14.0..=18.0).contains(&p1), "single core {p1} MLUPS");
    }

    /// Paper §4.1: "the memory interface can be saturated using only six
    /// of the eight cores available on each socket."
    #[test]
    fn saturation_at_six_cores_at_full_clock() {
        let m = EcmModel::supermuc_trt_simd(2.7);
        let sat = m.cores_to_saturate();
        assert!((5..=7).contains(&sat), "saturation at {sat} cores");
        // And the socket bound equals the roofline.
        assert!((m.mlups(8) - 87.8).abs() < 0.1);
    }

    /// Paper Fig 4: at 1.6 GHz all eight cores are needed and the socket
    /// still reaches 93 % of the full-clock performance.
    #[test]
    fn reduced_clock_keeps_93_percent() {
        let full = EcmModel::supermuc_trt_simd(2.7);
        let low = EcmModel::supermuc_trt_simd(1.6);
        let ratio = low.mlups(8) / full.mlups(8);
        assert!((ratio - 0.93).abs() < 0.01, "ratio {ratio}");
        assert!(low.cores_to_saturate() >= 7, "low clock must need (almost) all cores");
    }

    #[test]
    fn memory_cycles_shrink_with_clock() {
        let full = EcmModel::supermuc_trt_simd(2.7);
        let low = EcmModel::supermuc_trt_simd(1.6);
        // Same work, fewer cycles at lower clock (cycles are longer).
        assert!(low.mem_cycles_per_unit() < full.mem_cycles_per_unit());
        // Core/cache cycles are clock-invariant by definition.
        assert_eq!(low.t_core_cycles, full.t_core_cycles);
    }

    #[test]
    fn scaling_is_linear_then_flat() {
        let m = EcmModel::supermuc_trt_simd(2.7);
        assert!((m.mlups(2) - 2.0 * m.mlups(1)).abs() < 1e-9);
        assert_eq!(m.mlups(7), m.mlups(8));
    }

    /// The in-place traffic term: 38 lines/unit is 304 B/LUP, the
    /// roofline rises by exactly 57/38, and the socket-saturated speedup
    /// prediction approaches that pure traffic ratio.
    #[test]
    fn inplace_traffic_term_predicts_the_write_allocate_savings() {
        let pull = EcmModel::supermuc_trt_simd(2.7);
        let aa = pull.inplace();
        assert_eq!(pull.bytes_per_lup(), 456.0);
        assert_eq!(aa.bytes_per_lup(), 304.0);
        assert!((aa.roofline() / pull.roofline() - 57.0 / 38.0).abs() < 1e-12);
        // Saturated: the full traffic ratio (both sockets memory-bound).
        let sat = pull.inplace_speedup(16);
        assert!((sat - 57.0 / 38.0).abs() < 1e-9, "saturated speedup {sat}");
        // Single core: diluted by the unchanged in-core time, but the
        // cheaper cache/memory terms must still show.
        let one = pull.inplace_speedup(1);
        assert!((1.05..1.5).contains(&one), "single-core speedup {one}");
        // In-place saturates the (higher) roofline with more cores.
        assert!(aa.cores_to_saturate() >= pull.cores_to_saturate());
    }
}
