//! Per-tier kernel performance models for the Fig 3 comparison.
//!
//! The paper's Fig 3 compares three kernel tiers (generic, D3Q19-
//! specialized, SIMD-vectorized) in SRT and TRT variants on a SuperMUC
//! socket and a JUQUEEN node. Two facts structure the curves:
//!
//! * only the SIMD tier is memory bound — "the generic and even the D3Q19
//!   specific kernel are not memory bound on both machines. SIMD
//!   vectorization is needed to saturate the memory interface";
//! * at the full socket/node, SRT and TRT SIMD coincide (both hit the
//!   bandwidth bound), while at low core counts TRT is slightly slower
//!   (higher FLOP count).
//!
//! Per-core rates are calibrated from the paper's own anchor points
//! (documented in EXPERIMENTS.md): on SuperMUC the SIMD kernel is ~20 %
//! faster than the specialized kernel at the socket; on JUQUEEN the QPX
//! kernel is 2.5× the serial kernel.

use crate::ecm::EcmModel;
use crate::roofline::roofline_mlups;
use crate::smt::SmtModel;
use trillium_machine::MachineSpec;

/// The three optimization stages of paper §4.1.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum KernelTier {
    /// Textbook kernel for arbitrary lattice models.
    Generic,
    /// Fused, specialized D3Q19 kernel.
    Specialized,
    /// SoA + SIMD kernel.
    Simd,
}

/// Performance model of one kernel tier on one machine.
#[derive(Copy, Clone, Debug)]
pub struct TierModel {
    /// Per-core MLUPS before saturation.
    pub per_core_mlups: f64,
    /// Socket/node-level cap (roofline for memory-bound tiers; `None`
    /// for core-bound tiers, which scale linearly across the socket).
    pub cap_mlups: Option<f64>,
}

impl TierModel {
    /// Model for `tier` with the given collision operator (`trt = false`
    /// means SRT) on `machine` (SuperMUC socket or JUQUEEN node).
    pub fn new(machine: &MachineSpec, tier: KernelTier, trt: bool) -> Self {
        let roof = roofline_mlups(machine.lbm_bw_gib, 19);
        match machine.name {
            "SuperMUC" => {
                let simd_core = EcmModel::supermuc_trt_simd(machine.clock_ghz).single_core_mlups();
                match tier {
                    KernelTier::Simd => TierModel {
                        // SRT needs fewer in-core flops: slightly faster
                        // below saturation, identical at the socket.
                        per_core_mlups: if trt { simd_core } else { simd_core * 1.08 },
                        cap_mlups: Some(roof),
                    },
                    KernelTier::Specialized => TierModel {
                        // Socket anchor: SIMD ≈ 1.2 × specialized (§4.1),
                        // and the specialized kernel stays core bound.
                        per_core_mlups: roof / 1.2 / 8.0 * if trt { 1.0 } else { 1.12 },
                        cap_mlups: None,
                    },
                    KernelTier::Generic => TierModel {
                        per_core_mlups: roof / 2.1 / 8.0 * if trt { 1.0 } else { 1.15 },
                        cap_mlups: None,
                    },
                }
            }
            "JUQUEEN" => {
                let smt = SmtModel::juqueen_trt();
                match tier {
                    KernelTier::Simd => TierModel {
                        per_core_mlups: if trt {
                            smt.base_core_mlups
                        } else {
                            smt.base_core_mlups * 1.05
                        },
                        cap_mlups: Some(roof),
                    },
                    KernelTier::Specialized => TierModel {
                        // QPX kernel is 2.5× the serial kernel (§4.1).
                        per_core_mlups: smt.base_core_mlups / 2.5 * if trt { 1.0 } else { 1.1 },
                        cap_mlups: None,
                    },
                    KernelTier::Generic => TierModel {
                        per_core_mlups: smt.base_core_mlups / 3.5 * if trt { 1.0 } else { 1.12 },
                        cap_mlups: None,
                    },
                }
            }
            other => panic!("no kernel tier calibration for machine {other}"),
        }
    }

    /// Predicted MLUPS on `cores` cores.
    pub fn mlups(&self, cores: u32) -> f64 {
        let linear = cores as f64 * self.per_core_mlups;
        match self.cap_mlups {
            Some(cap) => linear.min(cap),
            None => linear,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The defining shape of Fig 3a: tier ordering on the full SuperMUC
    /// socket, SIMD ≈ 1.2 × specialized, SRT = TRT for SIMD at the socket.
    #[test]
    fn supermuc_socket_ordering() {
        let m = MachineSpec::supermuc();
        let simd_trt = TierModel::new(&m, KernelTier::Simd, true).mlups(8);
        let simd_srt = TierModel::new(&m, KernelTier::Simd, false).mlups(8);
        let spec = TierModel::new(&m, KernelTier::Specialized, true).mlups(8);
        let gen = TierModel::new(&m, KernelTier::Generic, true).mlups(8);
        assert!(gen < spec && spec < simd_trt);
        assert!((simd_trt / spec - 1.2).abs() < 0.05, "SIMD/specialized = {}", simd_trt / spec);
        assert_eq!(simd_trt, simd_srt, "both SIMD variants saturate the socket");
        assert!((simd_trt - 87.8).abs() < 0.2);
    }

    /// At low core counts TRT is slightly slower than SRT (§4.1: "for
    /// smaller core counts, where the memory interface is not saturated
    /// yet, the TRT kernel is slightly slower").
    #[test]
    fn trt_slower_than_srt_below_saturation() {
        let m = MachineSpec::supermuc();
        let trt = TierModel::new(&m, KernelTier::Simd, true).mlups(2);
        let srt = TierModel::new(&m, KernelTier::Simd, false).mlups(2);
        assert!(trt < srt);
    }

    /// Fig 3b: QPX kernel 2.5× the specialized kernel on JUQUEEN; the
    /// node saturates near the 76.2 MLUPS roofline.
    #[test]
    fn juqueen_node_ordering() {
        let m = MachineSpec::juqueen();
        let simd = TierModel::new(&m, KernelTier::Simd, true).mlups(16);
        let spec = TierModel::new(&m, KernelTier::Specialized, true).mlups(16);
        let gen = TierModel::new(&m, KernelTier::Generic, true).mlups(16);
        assert!(gen < spec && spec < simd);
        assert!((simd - 76.2).abs() < 2.5, "node SIMD {simd}");
        // 2.5x anchor holds below saturation.
        let simd4 = TierModel::new(&m, KernelTier::Simd, true).mlups(4);
        let spec4 = TierModel::new(&m, KernelTier::Specialized, true).mlups(4);
        assert!((simd4 / spec4 - 2.5).abs() < 0.05);
    }

    #[test]
    fn core_bound_tiers_scale_linearly() {
        let m = MachineSpec::supermuc();
        let t = TierModel::new(&m, KernelTier::Generic, true);
        assert!((t.mlups(8) - 8.0 * t.mlups(1)).abs() < 1e-9);
    }
}
