//! Analytic cost model for GPU-class (workgroup) backends.
//!
//! A device sweep is modeled as a fixed per-launch latency followed by a
//! bandwidth-bound streaming phase — the device-side analogue of the
//! roofline bound the CPU tiers use:
//!
//! ```text
//! T_sweep(cells) = latency + cells · bytes_per_lup / BW
//! ```
//!
//! Two regimes fall out of the sum. Small blocks are *latency bound*:
//! the launch overhead dominates and the effective MLUPS collapses far
//! below the roofline, so scattering many small sparse blocks onto a
//! device wastes it. Large dense blocks amortize the launch and approach
//! the bandwidth roofline, which — with HBM-class memory an order of
//! magnitude above a CPU socket — is where heterogeneous placement wins.
//! The crossover against a CPU rate is exposed directly so placement
//! policies can reason about it.

use crate::roofline::{bytes_per_lup, roofline_mlups};
use trillium_machine::DeviceSpec;

/// Latency + bandwidth model of one accelerator running one sweep.
#[derive(Clone, Copy, Debug)]
pub struct GpuModel {
    /// Effective LBM bandwidth in GiB/s.
    pub bw_gib: f64,
    /// Fixed per-sweep launch latency in seconds.
    pub launch_latency_s: f64,
    /// Velocities of the lattice model (19 for D3Q19).
    pub q: usize,
}

impl GpuModel {
    /// Model built from a device description, for a `q`-velocity lattice.
    pub fn from_device(dev: &DeviceSpec, q: usize) -> Self {
        GpuModel { bw_gib: dev.lbm_bw_gib, launch_latency_s: dev.launch_latency_s(), q }
    }

    /// Wall time of one sweep over `cells` cells, seconds.
    pub fn sweep_seconds(&self, cells: u64) -> f64 {
        let bytes = cells as f64 * bytes_per_lup(self.q);
        self.launch_latency_s + bytes / (self.bw_gib * 1024.0 * 1024.0 * 1024.0)
    }

    /// Effective update rate in MLUPS for a sweep of `cells` cells.
    pub fn mlups(&self, cells: u64) -> f64 {
        cells as f64 / self.sweep_seconds(cells) / 1e6
    }

    /// Bandwidth roofline in MLUPS — the large-block asymptote of
    /// [`GpuModel::mlups`].
    pub fn roofline(&self) -> f64 {
        roofline_mlups(self.bw_gib, self.q)
    }

    /// Cells per sweep above which the device beats a CPU resource
    /// delivering `cpu_mlups`, or `None` when the CPU rate exceeds the
    /// device roofline (no block is big enough). Solves
    /// `cells / T_sweep(cells) = cpu_mlups · 1e6` for `cells`.
    pub fn crossover_cells(&self, cpu_mlups: f64) -> Option<u64> {
        if cpu_mlups >= self.roofline() {
            return None;
        }
        let cpu_lups = cpu_mlups * 1e6;
        let bw_bytes = self.bw_gib * 1024.0 * 1024.0 * 1024.0;
        // cells = latency · cpu_lups / (1 − cpu_lups · bytes/BW)
        let denom = 1.0 - cpu_lups * bytes_per_lup(self.q) / bw_bytes;
        Some((self.launch_latency_s * cpu_lups / denom).ceil() as u64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hbm() -> GpuModel {
        GpuModel::from_device(&DeviceSpec::hbm_class(), 19)
    }

    /// Large blocks approach the bandwidth roofline.
    #[test]
    fn large_blocks_approach_the_roofline() {
        let m = hbm();
        let big = m.mlups(512 * 512 * 512);
        assert!(big > 0.95 * m.roofline(), "{big} vs roofline {}", m.roofline());
        assert!(big < m.roofline());
    }

    /// Small blocks are latency bound: a 16³ block on an HBM device runs
    /// far below the roofline, slower than the same cells on a CPU socket.
    #[test]
    fn small_blocks_are_latency_bound() {
        let m = hbm();
        let small = m.mlups(16 * 16 * 16);
        assert!(small < 0.25 * m.roofline(), "{small} vs {}", m.roofline());
        // The rate is monotone in block size.
        assert!(m.mlups(32 * 32 * 32) > small);
        assert!(m.mlups(64 * 64 * 64) > m.mlups(32 * 32 * 32));
    }

    /// The crossover against a SuperMUC-socket-class rate (87.8 MLUPS)
    /// exists and separates the two regimes.
    #[test]
    fn crossover_against_a_cpu_socket() {
        let m = hbm();
        let x = m.crossover_cells(87.8).expect("socket rate is below the device roofline");
        assert!(m.mlups(x + x / 10) > 87.8);
        assert!(m.mlups(x / 2) < 87.8);
        // A hypothetical CPU above the device roofline never loses.
        assert_eq!(m.crossover_cells(m.roofline() * 1.01), None);
    }

    /// The era-matched Kepler-class device still beats a socket on large
    /// blocks but has a higher relative launch cost.
    #[test]
    fn kepler_class_beats_socket_only_on_large_blocks() {
        let m = GpuModel::from_device(&DeviceSpec::kepler_class(), 19);
        assert!(m.roofline() > 87.8);
        let x = m.crossover_cells(87.8).expect("crossover exists");
        assert!(x > 500, "crossover {x} should be a nontrivial block size");
    }
}
