#![warn(missing_docs)]
//! Analytic performance models: roofline, ECM, and SMT scaling
//! (paper §4.1).
//!
//! The paper's methodology is *systematic performance engineering*: first
//! bound the kernel with the roofline model (LBM is memory bound: 456
//! bytes per lattice-cell update), then refine with the
//! Execution–Cache–Memory model, which adds in-core execution time and
//! inter-cache transfer times and therefore predicts the multi-core
//! scaling *within* a socket and the dependence on clock frequency. The
//! same models, evaluated with each machine's constants, generate the
//! model curves of Figures 3, 4 and 5 and the per-core kernel rates the
//! scaling simulator consumes.

pub mod ecm;
pub mod energy;
pub mod gpu;
pub mod kernels;
pub mod roofline;
pub mod smt;

pub use ecm::{EcmModel, CACHELINES_PER_UNIT, CACHELINES_PER_UNIT_INPLACE};
pub use energy::PowerModel;
pub use gpu::GpuModel;
pub use kernels::{KernelTier, TierModel};
pub use roofline::{bytes_per_lup, roofline_mlups};
