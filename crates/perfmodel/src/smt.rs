//! Simultaneous-multithreading model for the Blue Gene/Q A2 core
//! (paper Fig 5).
//!
//! The A2 is a 4-way SMT in-order core: a single hardware thread cannot
//! fill the pipeline or generate enough outstanding memory requests, so
//! "utilizing the available 4-way simultaneous multithreading capabilities
//! of the hardware is crucial" to saturate the memory interface. The model
//! scales the per-core in-flight efficiency with the SMT level and caps
//! total throughput at the machine's roofline.

use crate::roofline::roofline_mlups;

/// Per-core efficiency factor at a given SMT level on an in-order A2-like
/// core, calibrated to the paper's Fig 5 (1-way reaches roughly 55 %, and
/// 2-way roughly 85 %, of the 4-way single-core throughput).
pub fn smt_efficiency(ways: u32) -> f64 {
    match ways {
        1 => 0.55,
        2 => 0.85,
        _ => 1.0,
    }
}

/// SMT scaling model of the JUQUEEN TRT kernel.
#[derive(Copy, Clone, Debug)]
pub struct SmtModel {
    /// Per-core MLUPS at full (4-way) SMT before saturation — calibrated
    /// so the 16-core node just reaches the 76.2 MLUPS roofline (Fig 5).
    pub base_core_mlups: f64,
    /// Memory bandwidth under the kernel's pattern, GiB/s.
    pub mem_bw_gib: f64,
}

impl SmtModel {
    /// JUQUEEN node model for the optimized TRT kernel.
    pub fn juqueen_trt() -> Self {
        SmtModel { base_core_mlups: 4.9, mem_bw_gib: 32.4 }
    }

    /// Predicted node performance in MLUPS for `cores` active cores at
    /// `ways`-way SMT.
    pub fn mlups(&self, cores: u32, ways: u32) -> f64 {
        let per_core = self.base_core_mlups * smt_efficiency(ways);
        (cores as f64 * per_core).min(roofline_mlups(self.mem_bw_gib, 19))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Fig 5's qualitative content: at the full 16-core node, 4-way SMT
    /// saturates the memory interface, 2-way falls somewhat short, and
    /// 1-way clearly cannot saturate it.
    #[test]
    fn full_node_ordering_matches_fig5() {
        let m = SmtModel::juqueen_trt();
        let p1 = m.mlups(16, 1);
        let p2 = m.mlups(16, 2);
        let p4 = m.mlups(16, 4);
        assert!(p1 < p2 && p2 <= p4);
        assert!((p4 - 76.2).abs() < 2.5, "4-way node {p4}");
        assert!(p1 < 0.65 * p4, "1-way must be far from saturation: {p1}");
    }

    #[test]
    fn low_core_counts_scale_linearly() {
        let m = SmtModel::juqueen_trt();
        for ways in [1, 2, 4] {
            assert!((m.mlups(4, ways) - 2.0 * m.mlups(2, ways)).abs() < 1e-9);
        }
    }

    #[test]
    fn four_way_reaches_roofline_before_sixteen_cores() {
        let m = SmtModel::juqueen_trt();
        assert_eq!(m.mlups(16, 4), m.mlups(18, 4), "must be saturated at the node");
    }
}
