//! The roofline bound for memory-bound LBM kernels.
//!
//! "To update one fluid cell, 19 double values have to be streamed from
//! memory and back. Assuming a write allocate cache strategy and a double
//! size of 8 bytes, a total amount of 456 bytes per cell has to be
//! transferred over the memory interface." (paper §4.1)

/// Bytes transferred over the memory interface per lattice-cell update
/// for a `q`-velocity model: load + store + write-allocate, 8-byte doubles.
pub fn bytes_per_lup(q: usize) -> f64 {
    (q * 3 * 8) as f64
}

/// Roofline performance bound in MLUPS for a memory bandwidth given in
/// GiB/s (D3Q19 unless another `q` is passed through [`bytes_per_lup`]).
pub fn roofline_mlups(bw_gib: f64, q: usize) -> f64 {
    bw_gib * 1024.0 * 1024.0 * 1024.0 / bytes_per_lup(q) / 1e6
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn d3q19_costs_456_bytes_per_update() {
        assert_eq!(bytes_per_lup(19), 456.0);
        assert_eq!(bytes_per_lup(27), 648.0);
    }

    /// Paper §4.1: "37.3 GiB/s : 456 B/LUP = 87.8 MLUPS" on SuperMUC.
    #[test]
    fn supermuc_roofline_is_87_8_mlups() {
        let p = roofline_mlups(37.3, 19);
        assert!((p - 87.8).abs() < 0.05, "got {p}");
    }

    /// Paper §4.1: 32.4 GiB/s concurrent-store bandwidth on JUQUEEN gives
    /// "76.2 MLUPS of theoretically attainable performance".
    #[test]
    fn juqueen_roofline_is_76_2_mlups() {
        let p = roofline_mlups(32.4, 19);
        assert!((p - 76.2).abs() < 0.15, "got {p}");
    }
}
