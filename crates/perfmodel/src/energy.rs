//! Energy model behind the Fig 4 operating-point analysis.
//!
//! The paper: "the ECM model suggests an optimal clock frequency of
//! 1.6 GHz, at which 25 % less energy is consumed and still 93 % of the
//! performance can be achieved." The underlying trade-off: CPU dynamic
//! power scales superlinearly with clock (P ≈ P_static + c·f³ per
//! socket), while a bandwidth-saturated kernel barely slows down at a
//! lower clock — so energy per lattice update drops until the cores can
//! no longer saturate the memory interface.

use crate::ecm::EcmModel;

/// Socket-plus-share-of-node power model in watts at clock `f` (GHz):
/// static power (uncore, DRAM, board share — clock-independent) plus
/// dynamic core power ∝ f³. Total at full clock is pinned to 130 W; the
/// static/dynamic split is calibrated so the model reproduces the paper's
/// observed ~25 % energy saving at 1.6 GHz, which implies roughly 80 W
/// static — consistent with wall-level measurements of DRAM-heavy nodes.
#[derive(Copy, Clone, Debug)]
pub struct PowerModel {
    /// Static + uncore + DRAM power in watts (clock-independent).
    pub p_static: f64,
    /// Dynamic coefficient: `P_dyn = dyn_coeff · f³` (f in GHz).
    pub dyn_coeff: f64,
}

impl PowerModel {
    /// Sandy Bridge EP (SuperMUC node socket incl. its node share):
    /// 130 W at 2.7 GHz, 80 W static (see struct docs for calibration).
    pub fn sandy_bridge() -> Self {
        let p_static = 80.0;
        let dyn_coeff = (130.0 - p_static) / 2.7f64.powi(3);
        PowerModel { p_static, dyn_coeff }
    }

    /// Socket power at clock `f_ghz`.
    pub fn power(&self, f_ghz: f64) -> f64 {
        self.p_static + self.dyn_coeff * f_ghz.powi(3)
    }

    /// Energy per million lattice updates (joules) when the socket runs
    /// the TRT-SIMD kernel at `f_ghz` on all 8 cores.
    pub fn energy_per_mlup(&self, f_ghz: f64) -> f64 {
        let perf = EcmModel::supermuc_trt_simd(f_ghz).mlups(8); // MLUPS
        self.power(f_ghz) / perf
    }

    /// Relative energy saving of running at `low` instead of `high` GHz.
    pub fn energy_saving(&self, low: f64, high: f64) -> f64 {
        1.0 - self.energy_per_mlup(low) / self.energy_per_mlup(high)
    }

    /// The energy-optimal clock in a frequency range (left edge wins ties);
    /// scanned at 0.1 GHz resolution.
    pub fn optimal_clock(&self, lo: f64, hi: f64) -> f64 {
        let mut best = (lo, self.energy_per_mlup(lo));
        let steps = ((hi - lo) / 0.1).round() as usize;
        for i in 1..=steps {
            let f = lo + i as f64 * 0.1;
            let e = self.energy_per_mlup(f);
            if e < best.1 {
                best = (f, e);
            }
        }
        best.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's operating point: ~25 % energy saving at 1.6 GHz.
    #[test]
    fn quarter_energy_saving_at_1_6_ghz() {
        let p = PowerModel::sandy_bridge();
        let saving = p.energy_saving(1.6, 2.7);
        assert!((saving - 0.25).abs() < 0.08, "saving {saving}");
    }

    /// The optimum sits near 1.6 GHz — low enough to cut dynamic power,
    /// high enough that 8 cores still (almost) saturate the memory bus.
    #[test]
    fn optimal_clock_near_1_6() {
        let p = PowerModel::sandy_bridge();
        let f = p.optimal_clock(1.2, 2.7);
        assert!((1.3..=1.9).contains(&f), "optimal clock {f}");
    }

    /// Sanity: power increases monotonically with clock, and energy per
    /// update is worse at the extremes than at the optimum.
    #[test]
    fn power_monotone_energy_convex() {
        let p = PowerModel::sandy_bridge();
        assert!(p.power(1.6) < p.power(2.0));
        assert!(p.power(2.0) < p.power(2.7));
        let e_opt = p.energy_per_mlup(p.optimal_clock(1.0, 2.7));
        assert!(p.energy_per_mlup(2.7) > e_opt);
        assert!(p.energy_per_mlup(1.0) > e_opt);
    }

    /// Calibration sanity: 130 W at full clock.
    #[test]
    fn tdp_calibration() {
        let p = PowerModel::sandy_bridge();
        assert!((p.power(2.7) - 130.0).abs() < 1e-9);
    }
}
