//! The generic kernel with the other lattice models: D3Q27 and D2Q9
//! simulations through the same layout-agnostic code paths.

use trillium_field::{AosPdfField, CellFlags, FlagField, FlagOps, PdfField, Shape};
use trillium_kernels::{apply_boundaries, generic, BoundaryParams};
use trillium_lattice::{LatticeModel, Relaxation, D2Q9, D3Q27, MAGIC_TRT};

fn boxed_flags<M: LatticeModel>(shape: Shape, lid: bool) -> FlagField {
    let mut flags = FlagField::new(shape);
    for (x, y, z) in shape.interior().iter() {
        flags.set_flags(x, y, z, CellFlags::FLUID);
    }
    for (x, y, z) in shape.with_ghosts().iter() {
        if shape.is_interior(x, y, z) {
            continue;
        }
        // 2-D models: leave the z ghost planes fluid (handled by
        // periodic-like copies below) — walls only in x and y.
        if M::D == 2
            && (z < 0 || z >= shape.nz as i32)
            && x >= 0
            && y >= 0
            && (x as usize) < shape.nx
            && (y as usize) < shape.ny
        {
            continue;
        }
        let is_lid = lid && y >= shape.ny as i32;
        flags.set_flags(x, y, z, if is_lid { CellFlags::VELOCITY } else { CellFlags::NOSLIP });
    }
    flags
}

/// D3Q27 cavity: same physics as D3Q19, run through the generic kernel.
#[test]
fn d3q27_cavity_flows_and_conserves_mass() {
    let shape = Shape::cube(8);
    let flags = boxed_flags::<D3Q27>(shape, true);
    let params = BoundaryParams { wall_velocity: [0.05, 0.0, 0.0], ..Default::default() };
    let rel = Relaxation::trt_from_tau(0.8, MAGIC_TRT);
    let mut src = AosPdfField::<D3Q27>::new(shape);
    let mut dst = AosPdfField::<D3Q27>::new(shape);
    src.fill_equilibrium(1.0, [0.0; 3]);
    let mass0 = src.total_mass();
    for _ in 0..100 {
        apply_boundaries::<D3Q27, _>(&mut src, &flags, &params);
        generic::stream_collide_trt(&src, &mut dst, rel);
        src.swap(&mut dst);
    }
    let drift = (src.total_mass() - mass0).abs() / mass0;
    assert!(drift < 1e-11, "mass drift {drift}");
    // Lid (at +y here) drags the fluid.
    let u = src.velocity(4, 7, 4);
    assert!(u[0] > 1e-3, "no flow under the lid: {u:?}");
    // All PDFs stay finite and positive-ish.
    for (x, y, z) in shape.interior().iter() {
        for q in 0..27 {
            assert!(src.get(x, y, z, q).is_finite());
        }
    }
}

/// D2Q9 Couette flow on a z-thin grid: linear profile between a resting
/// and a moving wall, via the generic kernel (z extent 1, no z motion).
#[test]
fn d2q9_couette_linear_profile() {
    let ny = 9usize;
    let shape = Shape::new(6, ny, 1, 1);
    let mut flags = FlagField::new(shape);
    for (x, y, z) in shape.with_ghosts().iter() {
        // Everything fluid except the y walls; x wraps periodically and
        // z is inert for a 2-D model.
        if y < 0 {
            flags.set_flags(x, y, z, CellFlags::NOSLIP);
        } else if y >= ny as i32 {
            flags.set_flags(x, y, z, CellFlags::VELOCITY);
        } else {
            flags.set_flags(x, y, z, CellFlags::FLUID);
        }
    }
    let u_wall = 0.04;
    let params = BoundaryParams { wall_velocity: [u_wall, 0.0, 0.0], ..Default::default() };
    let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
    let mut src = AosPdfField::<D2Q9>::new(shape);
    let mut dst = AosPdfField::<D2Q9>::new(shape);
    src.fill_equilibrium(1.0, [0.0; 3]);

    for _ in 0..3000 {
        // Periodic wrap in x: copy boundary columns into opposite ghosts
        // (all 9 PDFs; simple and sufficient for the 2-D case).
        let mut buf = [0.0; 9];
        for y in -1..=(ny as i32) {
            src.get_cell(shape.nx as i32 - 1, y, 0, &mut buf);
            src.set_cell(-1, y, 0, &buf);
            src.get_cell(0, y, 0, &mut buf);
            src.set_cell(shape.nx as i32, y, 0, &buf);
        }
        apply_boundaries::<D2Q9, _>(&mut src, &flags, &params);
        generic::stream_collide_trt(&src, &mut dst, rel);
        src.swap(&mut dst);
    }
    for y in 0..ny as i32 {
        let u = src.velocity(3, y, 0);
        let exact = u_wall * (y as f64 + 0.5) / ny as f64;
        assert!((u[0] - exact).abs() < 3e-4 * u_wall + 1e-7, "y={y}: {} vs {exact}", u[0]);
        assert!(u[1].abs() < 1e-10);
        assert!(u[2] == 0.0, "2-D model must have zero z velocity");
    }
}

/// The D3Q27 and D3Q19 models agree on smooth flows: same cavity, same
/// parameters, velocities within the models' discretization difference.
#[test]
fn d3q19_and_d3q27_agree_on_smooth_flow() {
    use trillium_lattice::D3Q19;
    fn run<M: LatticeModel>(steps: usize) -> [f64; 3] {
        let shape = Shape::cube(8);
        let flags = boxed_flags::<M>(shape, true);
        let params = BoundaryParams { wall_velocity: [0.04, 0.0, 0.0], ..Default::default() };
        let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
        let mut src = AosPdfField::<M>::new(shape);
        let mut dst = AosPdfField::<M>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        for _ in 0..steps {
            apply_boundaries::<M, _>(&mut src, &flags, &params);
            generic::stream_collide_trt(&src, &mut dst, rel);
            src.swap(&mut dst);
        }
        src.velocity(4, 6, 4)
    }
    let u19 = run::<D3Q19>(120);
    let u27 = run::<D3Q27>(120);
    for d in 0..3 {
        assert!(
            (u19[d] - u27[d]).abs() < 0.1 * u19[0].abs().max(1e-3),
            "axis {d}: {} vs {}",
            u19[d],
            u27[d]
        );
    }
}
