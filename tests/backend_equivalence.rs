//! The backend abstraction's correctness contract: the portable, AVX2
//! and workgroup backends must produce bitwise identical PDFs on every
//! driver schedule — synchronous, overlapped, rebalanced (with real
//! block migrations) and resilient under injected faults — and under
//! both update schemes. Bitwise equality is what makes a backend a pure
//! *cost* choice: the heterogeneous placement planner can move a block
//! between a CPU socket and a workgroup device mid-run, and fault
//! recovery can replay a checkpoint on a different backend, without
//! perturbing the physics by a single ULP.

use trillium_core::driver::{
    run_distributed_rebalanced, run_distributed_with, DriverConfig, RebalanceConfig,
};
use trillium_core::prelude::*;

const STEPS: u64 = 24;

fn cavity(kernel: KernelChoice, backend: BackendKind) -> Scenario {
    Scenario::lid_driven_cavity(16, 2, 0.05, 0.08).with_kernel(kernel).with_backend(backend)
}

fn pdf_cfg(overlap: bool) -> DriverConfig {
    DriverConfig { overlap, collect_pdfs: true, ..DriverConfig::default() }
}

/// Synchronous and overlapped schedules, pull and in-place schemes: all
/// three backends land on the identical PDFs, odd and even step counts
/// alike.
#[test]
fn backends_agree_on_sync_and_overlapped_schedules() {
    for kernel in [KernelChoice::Pull, KernelChoice::InPlace] {
        for steps in [STEPS, STEPS + 1] {
            for overlap in [false, true] {
                let reference = run_distributed_with(
                    &cavity(kernel, BackendKind::Avx2),
                    4,
                    1,
                    steps,
                    &[],
                    pdf_cfg(overlap),
                );
                for backend in [BackendKind::Portable, BackendKind::Workgroup] {
                    let run = run_distributed_with(
                        &cavity(kernel, backend),
                        4,
                        1,
                        steps,
                        &[],
                        pdf_cfg(overlap),
                    );
                    assert_eq!(
                        reference.pdf_dump(),
                        run.pdf_dump(),
                        "{kernel:?} {backend:?} overlap={overlap} {steps} steps"
                    );
                }
            }
        }
    }
}

/// The rebalanced schedule migrates blocks between ranks; the received
/// block is re-stamped with the scenario backend, so the run must stay
/// bitwise equal to the sync reference on every backend.
#[test]
fn backends_agree_under_rebalancing_migrations() {
    let cfg = || RebalanceConfig {
        every_n_steps: 5,
        threshold: 1.3,
        hysteresis: 2,
        collect_pdfs: true,
        ..RebalanceConfig::default()
    };
    let reference = run_distributed_with(
        &cavity(KernelChoice::Pull, BackendKind::Avx2),
        2,
        1,
        STEPS,
        &[],
        pdf_cfg(false),
    );
    for backend in BackendKind::ALL {
        let skewed = cavity(KernelChoice::Pull, backend).with_skewed_balance(0.9);
        let run = run_distributed_rebalanced(&skewed, 2, 1, STEPS, cfg());
        assert!(
            run.total_migrations() >= 1,
            "the skewed assignment must trigger at least one migration ({backend:?})"
        );
        assert_eq!(reference.pdf_dump(), run.pdf_dump(), "rebalanced {backend:?}");
    }
}

/// The resilient schedule: checkpoints carry no backend identity (it is
/// scenario-global and re-stamped on restore), so rollback + replay on
/// any backend must land exactly on the reference.
#[test]
fn backends_agree_through_fault_recovery() {
    let reference = run_distributed_with(
        &cavity(KernelChoice::InPlace, BackendKind::Avx2),
        4,
        1,
        STEPS,
        &[],
        pdf_cfg(false),
    );
    for backend in BackendKind::ALL {
        let rc = ResilienceConfig {
            checkpoint_every: 5,
            fault: Some(FaultConfig::new(11).with_crash(1, 13)),
            driver: pdf_cfg(false),
            ..ResilienceConfig::default()
        };
        let res = run_distributed_resilient(
            &cavity(KernelChoice::InPlace, backend),
            4,
            1,
            STEPS,
            &[],
            &rc,
        )
        .expect("single crash is recoverable");
        assert_eq!(res.recoveries(), 1, "the injected crash must cause one rollback");
        assert_eq!(reference.pdf_dump(), res.run.pdf_dump(), "resilient {backend:?}");
    }
}

/// The MRT family runs through backend dispatch too: a short MRT-LES run
/// agrees across backends on the sync schedule.
#[test]
fn backends_agree_with_mrt_les() {
    let scenario = |backend| {
        Scenario::lid_driven_cavity(16, 2, 0.05, 0.08)
            .with_collision(Collision::MrtLes)
            .with_backend(backend)
    };
    let reference =
        run_distributed_with(&scenario(BackendKind::Avx2), 4, 1, STEPS, &[], pdf_cfg(false));
    for backend in [BackendKind::Portable, BackendKind::Workgroup] {
        let run = run_distributed_with(&scenario(backend), 4, 1, STEPS, &[], pdf_cfg(false));
        assert_eq!(reference.pdf_dump(), run.pdf_dump(), "mrt-les {backend:?}");
    }
}
