//! The in-place (AA-pattern) tier's correctness contract: every driver
//! schedule must produce PDFs bitwise identical to the two-field pull
//! reference — synchronous, overlapped, rebalanced (with real block
//! migrations), and resilient under injected faults. The single-buffer
//! update touches the field layer (parity-mapped accessors), the kernels,
//! ghost exchange, checkpointing and migration; this test pins the whole
//! stack at once.

use trillium_core::driver::{
    run_distributed_rebalanced, run_distributed_with, DriverConfig, RebalanceConfig,
};
use trillium_core::prelude::*;

const STEPS: u64 = 24;

fn cavity(kernel: KernelChoice) -> Scenario {
    Scenario::lid_driven_cavity(16, 2, 0.05, 0.08).with_kernel(kernel)
}

fn pdf_cfg(overlap: bool) -> DriverConfig {
    DriverConfig { overlap, collect_pdfs: true, ..DriverConfig::default() }
}

/// Synchronous and overlapped schedules: the in-place tier must match
/// the pull reference bit for bit, odd and even step counts alike (the
/// final storage parity differs between them).
#[test]
fn inplace_matches_pull_on_sync_and_overlapped_schedules() {
    for steps in [STEPS, STEPS + 1] {
        let reference =
            run_distributed_with(&cavity(KernelChoice::Pull), 4, 1, steps, &[], pdf_cfg(false));
        let sync =
            run_distributed_with(&cavity(KernelChoice::InPlace), 4, 1, steps, &[], pdf_cfg(false));
        let overlapped =
            run_distributed_with(&cavity(KernelChoice::InPlace), 4, 1, steps, &[], pdf_cfg(true));
        assert_eq!(reference.pdf_dump(), sync.pdf_dump(), "sync in-place, {steps} steps");
        assert_eq!(
            reference.pdf_dump(),
            overlapped.pdf_dump(),
            "overlapped in-place, {steps} steps"
        );
    }
}

/// The rebalanced schedule migrates whole in-place blocks (single-buffer
/// wire format, parity byte included) and must still end bitwise equal
/// to the pull reference, whatever the migration history was.
#[test]
fn inplace_matches_pull_under_rebalancing_migrations() {
    let cfg = || RebalanceConfig {
        every_n_steps: 5,
        threshold: 1.3,
        hysteresis: 2,
        collect_pdfs: true,
        ..RebalanceConfig::default()
    };
    let skew = |k: KernelChoice| cavity(k).with_skewed_balance(0.9);
    let reference =
        run_distributed_with(&cavity(KernelChoice::Pull), 2, 1, STEPS, &[], pdf_cfg(false));
    let pull = run_distributed_rebalanced(&skew(KernelChoice::Pull), 2, 1, STEPS, cfg());
    let inplace = run_distributed_rebalanced(&skew(KernelChoice::InPlace), 2, 1, STEPS, cfg());
    assert!(
        inplace.total_migrations() >= 1,
        "the skewed assignment must trigger at least one migration"
    );
    assert_eq!(reference.pdf_dump(), pull.pdf_dump(), "rebalanced pull vs sync pull");
    assert_eq!(reference.pdf_dump(), inplace.pdf_dump(), "rebalanced in-place vs sync pull");
}

/// The resilient schedule: in-place blocks checkpoint one buffer plus a
/// parity byte; a crash mid-run must roll back and replay to the exact
/// pull-reference state.
#[test]
fn inplace_matches_pull_through_fault_recovery() {
    let reference =
        run_distributed_with(&cavity(KernelChoice::Pull), 4, 1, STEPS, &[], pdf_cfg(false));
    let rc = ResilienceConfig {
        checkpoint_every: 5,
        fault: Some(FaultConfig::new(11).with_crash(1, 13)),
        driver: pdf_cfg(false),
        ..ResilienceConfig::default()
    };
    let res = run_distributed_resilient(&cavity(KernelChoice::InPlace), 4, 1, STEPS, &[], &rc)
        .expect("single crash is recoverable");
    assert_eq!(res.recoveries(), 1, "the injected crash must cause one rollback");
    // The rollback restored a step-10 checkpoint whose in-place blocks
    // were serialized as a single buffer with even parity; replay through
    // odd parities must still land exactly on the reference.
    assert_eq!(reference.pdf_dump(), res.run.pdf_dump());

    // And a clean resilient in-place run (checkpointing only, no faults)
    // is bitwise identical too.
    let clean_rc = ResilienceConfig {
        checkpoint_every: 7,
        driver: pdf_cfg(false),
        ..ResilienceConfig::default()
    };
    let clean =
        run_distributed_resilient(&cavity(KernelChoice::InPlace), 4, 1, STEPS, &[], &clean_rc)
            .expect("clean run");
    assert_eq!(reference.pdf_dump(), clean.run.pdf_dump());
}
