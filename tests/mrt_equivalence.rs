//! Schedule/kernel-invariance gate for the MRT family: the collision
//! operator choice must be orthogonal to *how* the time loop runs. Every
//! driver schedule (sync, overlapped, rebalanced, resilient) and the
//! in-place AA kernel tier must produce bitwise the PDFs of the
//! synchronous pull-scheme reference — for plain MRT and for MRT with
//! the Smagorinsky LES closure. Referenced by `kernels::mrt`'s module
//! docs.
//!
//! Also pins the stability claim that motivates MRT in the paper: a
//! cylinder wake at a relaxation time where SRT blows up within a few
//! hundred steps stays finite under MRT + LES.

use trillium_core::driver::{
    run_distributed_rebalanced, run_distributed_with, DriverConfig, RebalanceConfig, RunResult,
};
use trillium_core::recovery::{run_distributed_resilient, ResilienceConfig};
use trillium_core::scenario::{KernelChoice, Scenario};
use trillium_kernels::Collision;
use trillium_obs::ObsConfig;

const PROCS: u32 = 4;
const STEPS: u64 = 40; // even, so AA-pattern storage is back in natural order

fn assert_bitwise(label: &str, reference: &RunResult, other: &RunResult) {
    let (a, b) = (reference.pdf_dump(), other.pdf_dump());
    assert_eq!(a.len(), b.len(), "{label}: block count differs");
    for ((id_a, pa), (id_b, pb)) in a.iter().zip(&b) {
        assert_eq!(id_a, id_b, "{label}: block ids differ");
        assert_eq!(pa.len(), pb.len(), "{label}: block {id_a} size differs");
        for (q, (x, y)) in pa.iter().zip(pb).enumerate() {
            assert!(x.to_bits() == y.to_bits(), "{label}: block {id_a} slot {q}: {x:e} != {y:e}");
        }
    }
}

fn check_all_schedules(op: Collision) {
    // A flow that exercises interior + boundary + periodic exchange:
    // the quasi-2-D lid-driven cavity (no-slip walls, moving lid,
    // periodic spanwise axis).
    let make = |kernel: KernelChoice| {
        Scenario::lid_driven_cavity_2d(16, 2, 0.02, 0.08).with_collision(op).with_kernel(kernel)
    };
    let plain =
        |collect_pdfs| DriverConfig { collect_pdfs, obs: ObsConfig::off(), ..Default::default() };

    let reference =
        run_distributed_with(&make(KernelChoice::Pull), PROCS, 1, STEPS, &[], plain(true));

    let overlapped = run_distributed_with(
        &make(KernelChoice::Pull),
        PROCS,
        1,
        STEPS,
        &[],
        DriverConfig { overlap: true, ..plain(true) },
    );
    assert_bitwise("overlapped", &reference, &overlapped);

    // Aggressive rebalancing on a deliberately skewed initial assignment
    // so migrations actually fire mid-run.
    let rebalanced = run_distributed_rebalanced(
        &make(KernelChoice::Pull).with_skewed_balance(0.9),
        PROCS,
        1,
        STEPS,
        RebalanceConfig {
            every_n_steps: 5,
            threshold: 1.0,
            hysteresis: 1,
            cooldown_epochs: 1,
            collect_pdfs: true,
            obs: ObsConfig::off(),
            ..Default::default()
        },
    );
    assert!(rebalanced.total_migrations() > 0, "rebalance never fired; gate is vacuous");
    assert_bitwise("rebalanced", &reference, &rebalanced);

    let resilient = run_distributed_resilient(
        &make(KernelChoice::Pull),
        PROCS,
        1,
        STEPS,
        &[],
        &ResilienceConfig { driver: plain(true), ..Default::default() },
    )
    .expect("clean resilient run");
    assert_bitwise("resilient", &reference, &resilient.run);

    let inplace =
        run_distributed_with(&make(KernelChoice::InPlace), PROCS, 1, STEPS, &[], plain(true));
    assert_bitwise("in-place", &reference, &inplace);
}

#[test]
fn mrt_is_bitwise_invariant_across_schedules_and_tiers() {
    check_all_schedules(Collision::Mrt);
}

#[test]
fn mrt_les_is_bitwise_invariant_across_schedules_and_tiers() {
    check_all_schedules(Collision::MrtLes);
}

/// The stability pin: an impulsively started cylinder wake at
/// τ_e ≈ 0.524 (ν = 0.008, D = 8, Re = 100). SRT loses stability within
/// a few hundred steps at this sharpness; MRT + LES runs the same
/// configuration to a finite, sane state. This is the regime the
/// validation matrix measures the Strouhal number in (MRT family only —
/// `trillium_bench::validation::is_supported`).
#[test]
fn mrt_les_survives_where_srt_diverges() {
    let make = |op: Collision| {
        Scenario::von_karman([64, 32, 2], [2, 2, 2], 0.008, 0.1, 8.0).with_collision(op)
    };
    let cfg = || DriverConfig { obs: ObsConfig::off(), ..Default::default() };

    // Sane = finite, positive, and bounded by a generous multiple of the
    // uniform-inflow kinetic energy. A blown-up run lands at ±1e200-ish
    // (or NaN) long before the energy overflows to infinity.
    let domain_energy = 0.5 * 0.1 * 0.1 * (64.0 * 32.0 * 2.0);
    let sane = |e: f64| e.is_finite() && e > 0.0 && e < 10.0 * domain_energy;

    let srt = run_distributed_with(&make(Collision::Srt), PROCS, 1, 1000, &[], cfg());
    assert!(
        !sane(srt.kinetic_energy_final()),
        "SRT unexpectedly stable (energy {:e}); the stability pin is vacuous",
        srt.kinetic_energy_final()
    );

    let les = run_distributed_with(&make(Collision::MrtLes), PROCS, 1, 1000, &[], cfg());
    let e = les.kinetic_energy_final();
    assert!(sane(e), "MRT+LES energy {e:e}");
}
