//! Integration test of the runtime rebalance subsystem: a deliberately
//! skewed 2-rank run must detect the measured imbalance, migrate at
//! least one block (PDF state and all), conserve mass, and end with a
//! strictly better max/avg load ratio than the same run without
//! rebalancing.

use trillium_core::driver::{run_distributed_rebalanced, RebalanceConfig};
use trillium_core::prelude::*;

/// 8 blocks on 2 ranks with ~90 % of the workload on rank 0 (7 blocks
/// against 1).
fn skewed_scenario() -> Scenario {
    Scenario::lid_driven_cavity(16, 2, 0.06, 0.08).with_skewed_balance(0.9)
}

const STEPS: u64 = 40;

fn rebalance_cfg() -> RebalanceConfig {
    RebalanceConfig {
        every_n_steps: 5,
        threshold: 1.3,
        hysteresis: 2,
        ..RebalanceConfig::default()
    }
}

#[test]
fn skewed_run_migrates_and_improves_balance() {
    // Baseline: identical skewed run, monitoring only (infinite threshold
    // means the detector never fires, so nothing ever moves).
    let baseline = run_distributed_rebalanced(
        &skewed_scenario(),
        2,
        1,
        STEPS,
        RebalanceConfig { every_n_steps: 5, ..RebalanceConfig::monitor_only() },
    );
    assert_eq!(baseline.total_migrations(), 0);
    let baseline_ratio = baseline.final_load_ratio().expect("baseline measured no epochs");
    assert!(
        baseline_ratio > 1.4,
        "skewed setup should measure heavy imbalance, got {baseline_ratio}"
    );

    let result = run_distributed_rebalanced(&skewed_scenario(), 2, 1, STEPS, rebalance_cfg());

    // At least one block physically moved between ranks.
    assert!(result.total_migrations() >= 1, "no migration happened");
    assert!(result.rebalance_count() >= 1);

    // Migration moved state bit-for-bit: global mass is conserved to
    // round-off and nothing went non-finite.
    assert!(!result.has_nan());
    assert!(result.mass_drift().abs() <= 1e-10, "mass drift {} exceeds 1e-10", result.mass_drift());

    // Every cell was swept every step, no matter who owned its block.
    assert_eq!(result.total_stats().cells, 16 * 16 * 16 * STEPS);

    // The measured load ratio at the end beats the do-nothing baseline.
    let final_ratio = result.final_load_ratio().expect("rebalanced run measured no epochs");
    assert!(
        final_ratio < baseline_ratio,
        "final ratio {final_ratio} not better than baseline {baseline_ratio}"
    );

    // The history shows the trigger path: imbalanced epochs first, then a
    // migration round.
    let history = result.imbalance_history();
    assert!(history.len() == (STEPS / 5) as usize);
    let first_migrating_epoch = result.ranks[0]
        .rebalance
        .as_ref()
        .unwrap()
        .epochs
        .iter()
        .position(|e| e.migrated > 0)
        .expect("no epoch migrated");
    assert!(first_migrating_epoch >= 1, "hysteresis of 2 cannot fire on the first epoch");
}

#[test]
fn rebalanced_physics_matches_unbalanced_run() {
    // Rebalancing only moves blocks between ranks; the numbers computed
    // each step must be unaffected. Compare total mass against a plain
    // run of the same scenario.
    let plain = run_distributed(&skewed_scenario(), 2, 1, STEPS);
    let rebalanced = run_distributed_rebalanced(&skewed_scenario(), 2, 1, STEPS, rebalance_cfg());
    let mass = |r: &RunResult| -> f64 { r.ranks.iter().map(|x| x.mass_final).sum() };
    // Per-block masses are bit-identical; only the rank-wise summation
    // order differs, so allow round-off.
    let (a, b) = (mass(&plain), mass(&rebalanced));
    assert!(
        ((a - b) / a).abs() < 1e-13,
        "block migration changed the computed physics: {a} vs {b}"
    );
}

#[test]
fn invalid_plan_entries_are_skipped_not_fatal() {
    // A hand-built plan carrying one valid migration plus two defective
    // ones (unknown block, owner mismatch). The transfer protocol used
    // to panic on the bad entries; it must now execute the valid move
    // and count the rest as skipped — symmetrically on every rank, so
    // nobody waits for a transfer that will never be sent.
    use std::collections::HashMap;
    use trillium_blockforest::distribute;
    use trillium_comm::World;
    use trillium_core::migrate::execute_migrations;
    use trillium_obs::{ObsConfig, Recorder};
    use trillium_rebalance::{BlockRecord, Migration, PlanMethod, RebalancePlan};

    let scenario = skewed_scenario();
    let forest0 = scenario.make_forest(2);
    let views = distribute(&forest0);

    let results = World::run(2, |mut comm| {
        let rank = comm.rank();
        let mut forest = forest0.clone();
        let mut view = views[rank as usize].clone();
        let mut blocks: Vec<BlockSim> =
            view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
        let mut index_of: HashMap<_, _> =
            view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

        let mut records: Vec<BlockRecord> = forest
            .blocks
            .iter()
            .map(|b| BlockRecord {
                id: b.id.pack(),
                owner: b.rank,
                coords: [0, 0, 0],
                level: b.id.level(),
                cost: 1.0,
                fluid_cells: 1,
            })
            .collect();
        records.sort_by_key(|r| r.id);
        let victim = records.iter().find(|r| r.owner == 0).expect("rank 0 owns blocks").id;
        let foreign = records.iter().find(|r| r.owner == 1).expect("rank 1 owns blocks").id;
        let migrations = vec![
            Migration { id: victim, from: 0, to: 1 },
            // Unknown block: no record carries this id.
            Migration { id: (1 << 40) + 12345, from: 0, to: 1 },
            // Owner mismatch: the record says rank 1 holds it.
            Migration { id: foreign, from: 0, to: 1 },
        ];
        let assignment = records.iter().map(|r| if r.id == victim { 1 } else { r.owner }).collect();
        let plan = RebalancePlan {
            records,
            assignment,
            migrations,
            method: PlanMethod::NoOp,
            old_ratio: 1.0,
            new_ratio: 1.0,
        };
        let rec = Recorder::new(rank, ObsConfig::default());
        let stats = execute_migrations(
            &mut comm,
            &plan,
            &mut forest,
            &mut view,
            &mut blocks,
            &mut index_of,
            scenario.boundary,
            &rec,
        );
        (stats, blocks.len())
    });

    let (s0, n0) = results[0];
    let (s1, n1) = results[1];
    assert_eq!(s0.sent, 1, "the valid migration must execute");
    assert_eq!(s0.skipped, 2, "both defective entries must be skipped");
    assert_eq!(s1.received, 1);
    assert_eq!(s1.skipped, 0, "skips count only on the named source rank");
    assert_eq!(n0 + n1, 8, "no block may vanish");
    assert_eq!(n1, views[1].blocks.len() + 1, "rank 1 gained exactly the valid block");
}

#[test]
fn balanced_run_stays_correct_with_rebalancer_armed() {
    // A well-balanced cavity under the armed rebalancer: whatever the
    // detector decides under machine noise, the run must stay correct.
    let s = Scenario::lid_driven_cavity(16, 2, 0.06, 0.08);
    let r = run_distributed_rebalanced(&s, 4, 1, 30, RebalanceConfig::default());
    assert!(!r.has_nan());
    assert!(r.mass_drift().abs() <= 1e-10);
    assert_eq!(r.total_stats().cells, 16 * 16 * 16 * 30);
    assert!(r.final_load_ratio().is_some());
}
