//! The paper's §2.2 setup workflow, end to end: the block structure is
//! computed once (possibly on a different machine), written to the
//! size-optimized file, and at simulation start "only one process
//! accesses the file system and loads the entire file into memory using
//! one single read operation. Following this read operation, the binary
//! file content is broadcast to all processes."

use trillium_blockforest::{distribute, file, morton_balance, SetupForest};
use trillium_comm::World;
use trillium_core::prelude::*;
use trillium_geometry::vec3::vec3;
use trillium_geometry::Aabb;

/// Rank 0 "reads" the file and broadcasts the bytes; every rank parses
/// its own copy, distributes, and picks out its local view — no rank ever
/// needs more than the broadcast buffer plus its own blocks.
#[test]
fn one_reader_broadcast_setup() {
    // Pre-computed setup artifact (as if from an earlier run).
    let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(4.0, 4.0, 4.0));
    let mut forest = SetupForest::uniform(domain, [4, 4, 4], [8, 8, 8]);
    morton_balance(&mut forest, 8);
    let file_bytes = file::save(&forest);
    let expected_blocks: Vec<usize> =
        distribute(&forest).iter().map(|v| v.num_local_blocks()).collect();

    let results = World::run(8, |mut comm| {
        // Only rank 0 holds the file content initially.
        let payload = if comm.rank() == 0 { Some(file_bytes.clone()) } else { None };
        let bytes = comm.broadcast(0, payload);
        let forest = file::load(&bytes).expect("every rank parses the broadcast file");
        let views = distribute(&forest);
        let mine = &views[comm.rank() as usize];
        // Sanity: the total workload is globally consistent.
        let local_work: f64 = mine.blocks.iter().map(|b| b.workload).sum();
        let total = comm.allreduce_sum_f64(local_work);
        (mine.num_local_blocks(), total)
    });

    for (rank, (nblocks, total)) in results.iter().enumerate() {
        assert_eq!(*nblocks, expected_blocks[rank], "rank {rank} block count");
        assert!((total - forest.total_workload()).abs() < 1e-9);
    }
}

/// The whole simulate-from-file path: build + balance + save on the
/// "setup machine", then load and run the simulation — results identical
/// to the direct path.
#[test]
fn simulate_from_saved_forest_matches_direct() {
    let scenario = Scenario::lid_driven_cavity(16, 2, 0.06, 0.07);
    let probes: Vec<[i64; 3]> = vec![[4, 4, 4], [11, 12, 13]];

    // Direct path.
    let direct = trillium_core::driver::run_distributed_probed(&scenario, 4, 1, 20, &probes);

    // File path: same forest via save/load (the scenario rebuilds blocks
    // from the distributed views identically).
    let forest = scenario.make_forest(4);
    let bytes = file::save(&forest);
    let loaded = file::load(&bytes).unwrap();
    let views = distribute(&loaded);
    let results = World::run(4, |comm| {
        let view = &views[comm.rank() as usize];
        // Rebuild blocks exactly as the driver does and compare state
        // structurally (full driver reuse is covered elsewhere; here the
        // loaded forest must produce identical block layouts).
        view.blocks
            .iter()
            .map(|lb| {
                let sim = scenario.build_block(lb);
                (lb.id, sim.fluid_cells())
            })
            .collect::<Vec<_>>()
    });
    let loaded_blocks: usize = results.iter().map(|r| r.len()).sum();
    assert_eq!(loaded_blocks, 8);
    for r in results.iter().flatten() {
        assert_eq!(r.1, 8 * 8 * 8, "cavity blocks are fully fluid");
    }
    assert!(!direct.has_nan());
}

/// Refined (mixed-level) forests: the data structures support octree
/// refinement even though the LBM driver requires uniform levels (as in
/// the paper, where refinement support in the solver is future work).
#[test]
fn refined_forest_balances_and_serializes() {
    let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(2.0, 2.0, 2.0));
    let mut forest = SetupForest::uniform(domain, [2, 2, 2], [16, 16, 16]);
    // Refine one block twice (two levels deep).
    let target = forest.blocks[3].id;
    forest.refine_where(|b| b.id == target);
    let child = forest.blocks.iter().find(|b| b.id.level() == 1).unwrap().id;
    forest.refine_where(|b| b.id == child);
    assert_eq!(forest.num_blocks(), 7 + 7 + 8);
    assert!(!forest.is_uniform_level());

    // Morton balancing handles mixed levels (coordinates are scaled to
    // the finest level).
    morton_balance(&mut forest, 4);
    assert!(forest.imbalance() < 2.0);
    let w = forest.rank_workloads();
    assert!(w.iter().all(|&x| x > 0.0), "all ranks must receive work: {w:?}");

    // The file format round-trips the refinement structure.
    let bytes = file::save(&forest);
    let loaded = file::load(&bytes).unwrap();
    assert_eq!(loaded.num_blocks(), forest.num_blocks());
    for (a, b) in forest.blocks.iter().zip(&loaded.blocks) {
        assert_eq!(a.id, b.id);
        assert_eq!(a.id.level(), b.id.level());
        assert_eq!(a.coords, b.coords);
        assert!((a.aabb.min - b.aabb.min).norm() < 1e-12);
    }
    // And the driver-facing distribution rejects it (uniform levels only).
    let result = std::panic::catch_unwind(|| distribute(&loaded));
    assert!(result.is_err(), "mixed-level distribution must be rejected loudly");
}
