//! End-to-end resilience acceptance tests: deterministic fault
//! injection, failure detection instead of deadlock, and
//! checkpoint/restart recovery that is bitwise indistinguishable from a
//! run that never failed.

use std::sync::Arc;
use std::time::Duration;
use trillium_core::driver::{run_distributed_with, DriverConfig};
use trillium_core::prelude::*;
use trillium_core::recovery::run_distributed_resilient;
use trillium_core::recovery::ResilienceConfig;
use trillium_geometry::voxelize::VoxelizeConfig;
use trillium_geometry::{VascularTree, VascularTreeParams};

const RANKS: u32 = 4;
const STEPS: u64 = 30;

fn vascular() -> Scenario {
    let tree = VascularTree::generate(&VascularTreeParams {
        generations: 4,
        root_radius: 1.2,
        root_length: 7.0,
        ..Default::default()
    });
    Scenario::from_sdf(
        "vascular-resilience",
        Arc::new(tree),
        0.25,
        [16, 16, 16],
        0.06,
        [0.0, 0.0, 0.05],
        1.0,
        VoxelizeConfig::default(),
    )
}

fn pdf_cfg() -> DriverConfig {
    DriverConfig { collect_pdfs: true, ..DriverConfig::default() }
}

fn resilient_cfg(fault: FaultConfig) -> ResilienceConfig {
    ResilienceConfig {
        checkpoint_every: 7,
        fault: Some(fault),
        driver: pdf_cfg(),
        ..ResilienceConfig::default()
    }
}

/// The headline acceptance: a 4-rank vascular run in which one rank
/// crashes at step N rolls the cohort back to the last consistent
/// checkpoint and replays to a final state bitwise identical to a run
/// that never failed — probes, PDFs and mass all agree exactly.
#[test]
fn rank_crash_recovers_bitwise_identical_to_unfaulted_run() {
    let probes: Vec<[i64; 3]> = vec![[8, 8, 4], [10, 9, 8]];
    let truth = run_distributed_with(&vascular(), RANKS, 1, STEPS, &probes, pdf_cfg());
    assert!(!truth.has_nan());

    let rc = resilient_cfg(FaultConfig::new(42).with_crash(2, 17));
    let res = run_distributed_resilient(&vascular(), RANKS, 1, STEPS, &probes, &rc)
        .expect("clean resilient run");

    assert_eq!(res.recoveries(), 1, "the injected crash must trigger exactly one recovery");
    assert!(res.replayed_steps() > 0, "rollback must replay the lost window");
    assert_eq!(truth.pdf_dump(), res.run.pdf_dump(), "recovered PDFs differ from ground truth");
    assert_eq!(truth.probes(), res.run.probes(), "recovered probes differ from ground truth");
    assert_eq!(
        truth.mass_drift().to_bits(),
        res.run.mass_drift().to_bits(),
        "mass accounting differs"
    );
}

/// Determinism of the failure itself: running the identical fault seed
/// twice produces the identical failure trace, event for event — the
/// property that makes a distributed failure debuggable by replay.
#[test]
fn same_fault_seed_reproduces_identical_failure_trace() {
    let fault = FaultConfig::new(1234)
        .with_crash(1, 11)
        .with_drops(0.02)
        .with_reordering(0.05, 2)
        .with_fault_cap(8);
    let a =
        run_distributed_resilient(&vascular(), RANKS, 1, STEPS, &[], &resilient_cfg(fault.clone()))
            .expect("capped faults are recoverable");
    let b = run_distributed_resilient(&vascular(), RANKS, 1, STEPS, &[], &resilient_cfg(fault))
        .expect("capped faults are recoverable");
    let (ta, tb) = (a.failure_trace(), b.failure_trace());
    assert!(!ta.is_empty(), "the fault plan must have injected something");
    assert_eq!(ta, tb, "failure traces diverge across reruns of the same seed");
    assert_eq!(a.recoveries(), b.recoveries());
    assert_eq!(a.replayed_steps(), b.replayed_steps());
    assert_eq!(a.run.pdf_dump(), b.run.pdf_dump());
}

/// Message-level faults (drops and reordering, capped so the network
/// eventually runs clean) are also survived exactly: timeouts detect
/// the lost messages, the cohort rolls back, and the replayed run
/// matches the unfaulted reference.
#[test]
fn dropped_and_reordered_messages_recover_exactly() {
    let truth = run_distributed_with(&vascular(), RANKS, 1, STEPS, &[], pdf_cfg());
    let mut rc = resilient_cfg(
        FaultConfig::new(9).with_drops(0.01).with_reordering(0.04, 3).with_fault_cap(6),
    );
    // Drops are detected by timeout; keep it short so the test is fast.
    rc.step_timeout = Duration::from_secs(2);
    let res = run_distributed_resilient(&vascular(), RANKS, 1, STEPS, &[], &rc)
        .expect("capped faults are recoverable");
    assert_eq!(truth.pdf_dump(), res.run.pdf_dump());
    assert!(res.run.mass_drift().abs() < 1e-9);
    assert!(!res.run.has_nan());
}

/// Regression for the silent-deadlock failure mode: a 4-rank run in
/// which rank 2 panics mid-step must complete — survivors observing the
/// failure as an error — within a wall-clock budget enforced by a
/// test-side watchdog, instead of hanging forever in a blocking receive.
#[test]
fn rank_panic_surfaces_as_error_within_watchdog_budget() {
    use trillium_comm::{CommError, World};
    let (tx, rx) = std::sync::mpsc::channel();
    let guard = std::thread::spawn(move || {
        let results = World::run_fallible(4, None, |mut comm| {
            let rank = comm.rank();
            for step in 0..10u64 {
                if rank == 2 && step == 3 {
                    panic!("simulated hard failure on rank 2");
                }
                // Ring exchange: everyone sends, then blocks receiving.
                comm.send((rank + 1) % 4, step, vec![rank as u8]);
                match comm.recv_result((rank + 3) % 4, step) {
                    Ok(_) => {}
                    Err(e) => return Err::<(), CommError>(e),
                }
            }
            Ok(())
        });
        tx.send(results).unwrap();
    });
    let results = rx
        .recv_timeout(Duration::from_secs(30))
        .expect("deadlock: survivors did not observe the dead rank within 30 s");
    guard.join().unwrap();
    assert!(results[2].as_ref().unwrap_err().contains("simulated hard failure"));
    // Rank 3 receives directly from the dead rank and must name it. The
    // upstream survivors observe the failure as a *cascade*: each one's
    // ring predecessor errors out and departs, so they report whichever
    // departed peer they were blocked on — but they must all error, not
    // hang.
    let rank3 = results[3].as_ref().expect("survivor must not panic");
    assert_eq!(*rank3, Err(CommError::RankDown(2)), "rank 3 must see the failed rank");
    for rank in [0usize, 1] {
        let observed = results[rank].as_ref().expect("survivor must not panic");
        assert!(
            matches!(observed, Err(CommError::RankDown(_))),
            "rank {rank} must observe the failure cascade, not hang: {observed:?}"
        );
    }
}

/// Both driver schedules compose with recovery: the overlapped
/// resilient run under a crash equals the synchronous resilient run
/// under the same crash, and both equal the unfaulted reference.
#[test]
fn overlap_and_sync_resilient_schedules_agree_under_faults() {
    let truth = run_distributed_with(&vascular(), RANKS, 1, STEPS, &[], pdf_cfg());
    let fault = FaultConfig::new(77).with_crash(3, 9);
    let sync =
        run_distributed_resilient(&vascular(), RANKS, 1, STEPS, &[], &resilient_cfg(fault.clone()))
            .expect("capped faults are recoverable");
    let mut over_cfg = resilient_cfg(fault);
    over_cfg.driver = DriverConfig { overlap: true, collect_pdfs: true, ..Default::default() };
    let over = run_distributed_resilient(&vascular(), RANKS, 1, STEPS, &[], &over_cfg)
        .expect("capped faults are recoverable");
    assert_eq!(truth.pdf_dump(), sync.run.pdf_dump());
    assert_eq!(truth.pdf_dump(), over.run.pdf_dump());
    assert_eq!(sync.recoveries(), over.recoveries());
}
