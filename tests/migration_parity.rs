//! Regression tests for migrating in-place (AA-pattern) blocks.
//!
//! An in-place block has no send buffer: the storage parity bit on its
//! single PDF field decides how distribution indices map to memory. The
//! migration payload (TCP2, [`trillium_core::checkpoint::save_block_full`])
//! therefore carries a scheme byte — Pull = 0, InPlace even = 1,
//! InPlace odd = 2 — and restoring an odd-parity block as even would
//! silently scramble the PDF mapping on the new owner. These tests pin
//! the scheme byte on the wire and the end-to-end bitwise equivalence
//! of a mid-run odd-parity migration against the unmigrated run.

use std::collections::HashMap;
use trillium_blockforest::distribute;
use trillium_comm::World;
use trillium_core::checkpoint::save_block_full;
use trillium_core::driver::{run_distributed_with, RebalanceConfig};
use trillium_core::migrate::execute_migrations;
use trillium_core::prelude::*;
use trillium_obs::{ObsConfig, Recorder};
use trillium_rebalance::{BlockRecord, Migration, PlanMethod, RebalancePlan};

/// One 16³ in-place block: no neighbors, so a rank can step it locally
/// (boundary sweep + fused stream–collide) with no ghost exchange.
fn single_block_scenario() -> Scenario {
    Scenario::lid_driven_cavity(16, 1, 0.05, 0.08).with_kernel(KernelChoice::InPlace)
}

/// Offset of the scheme byte in a TCP2 block payload: magic (4) +
/// nx/ny/nz/ghost (4 × 4).
const SCHEME_BYTE_OFFSET: usize = 20;

/// Migrates the single in-place block at *odd* parity mid-run (after 3
/// local steps) from rank 0 to rank 1, finishes the run there, and pins
/// the final serialized state bitwise against the same 6 steps taken
/// without any migration.
#[test]
fn inplace_block_migrated_at_odd_parity_is_bitwise_preserved() {
    let scenario = single_block_scenario();
    let rel = scenario.relaxation;
    let forest0 = scenario.make_forest(2);
    let views = distribute(&forest0);
    // The static balancer picks the owner; the test only needs the other
    // rank as destination.
    let src = forest0.blocks[0].rank;
    let dst = 1 - src;
    assert_eq!(views[src as usize].blocks.len(), 1);

    // Unmigrated reference: 6 steps on one rank.
    let solo = {
        let mut block = scenario.build_block(&views[src as usize].blocks[0]);
        for _ in 0..6 {
            block.apply_boundaries();
            block.stream_collide(rel);
        }
        save_block_full(&block)
    };

    let results = World::run(2, |mut comm| {
        let rank = comm.rank();
        let mut forest = forest0.clone();
        let mut view = views[rank as usize].clone();
        let mut blocks: Vec<BlockSim> =
            view.blocks.iter().map(|lb| scenario.build_block(lb)).collect();
        let mut index_of: HashMap<_, _> =
            view.blocks.iter().enumerate().map(|(i, b)| (b.id, i)).collect();

        // The owner advances the block an odd number of steps, so the
        // parity bit is set when the block goes on the wire.
        if rank == src {
            for _ in 0..3 {
                blocks[0].apply_boundaries();
                blocks[0].stream_collide(rel);
            }
            assert_eq!(blocks[0].scheme, UpdateScheme::InPlace);
            assert!(blocks[0].src.parity(), "3 in-place steps must leave odd parity");
            let payload = save_block_full(&blocks[0]);
            assert_eq!(
                payload[SCHEME_BYTE_OFFSET], 2,
                "odd-parity in-place block must serialize scheme byte 2"
            );
        }

        // Every rank executes the same hand-built plan: the block moves
        // from rank 0 to rank 1 mid-run.
        let records: Vec<BlockRecord> = forest
            .blocks
            .iter()
            .map(|b| BlockRecord {
                id: b.id.pack(),
                owner: b.rank,
                coords: [0, 0, 0],
                level: b.id.level(),
                cost: 1.0,
                fluid_cells: 1,
            })
            .collect();
        let moved = records[0].id;
        let plan = RebalancePlan {
            assignment: vec![dst],
            migrations: vec![Migration { id: moved, from: src, to: dst }],
            records,
            method: PlanMethod::NoOp,
            old_ratio: 1.0,
            new_ratio: 1.0,
        };
        let rec = Recorder::new(rank, ObsConfig::default());
        let stats = execute_migrations(
            &mut comm,
            &plan,
            &mut forest,
            &mut view,
            &mut blocks,
            &mut index_of,
            scenario.boundary,
            &rec,
        );

        if rank == dst {
            assert_eq!(stats.received, 1);
            assert!(
                blocks[0].src.parity(),
                "migration dropped the parity bit: the restored block came back even"
            );
            for _ in 0..3 {
                blocks[0].apply_boundaries();
                blocks[0].stream_collide(rel);
            }
            Some(save_block_full(&blocks[0]))
        } else {
            assert_eq!(stats.sent, 1);
            assert!(blocks.is_empty(), "the source rank gave its only block away");
            None
        }
    });

    let migrated = results[dst as usize].clone().expect("the destination rank finished the run");
    assert!(results[src as usize].is_none());
    assert_eq!(
        migrated, solo,
        "3 steps + odd-parity migration + 3 steps must be bitwise identical to 6 solo steps"
    );
}

/// Driver-level version: a skewed in-place run under the runtime
/// rebalancer with an odd epoch length, so blocks migrate mid-run at
/// odd parity. The final PDFs must match the same run without any
/// migration, bit for bit.
#[test]
fn rebalanced_inplace_run_with_odd_epochs_matches_plain_run_bitwise() {
    let scenario = || {
        Scenario::lid_driven_cavity(16, 2, 0.05, 0.08)
            .with_kernel(KernelChoice::InPlace)
            .with_skewed_balance(0.9)
    };
    const STEPS: u64 = 24;
    let plain = run_distributed_with(
        &scenario(),
        2,
        1,
        STEPS,
        &[],
        DriverConfig { collect_pdfs: true, ..DriverConfig::default() },
    );
    let rebalanced = run_distributed_rebalanced(
        &scenario(),
        2,
        1,
        STEPS,
        RebalanceConfig {
            every_n_steps: 3,
            threshold: 1.3,
            hysteresis: 2,
            collect_pdfs: true,
            ..RebalanceConfig::default()
        },
    );
    assert!(rebalanced.total_migrations() >= 1, "skewed run must migrate");
    assert!(!rebalanced.has_nan());
    assert_eq!(
        plain.pdf_dump(),
        rebalanced.pdf_dump(),
        "mid-run in-place migration changed the computed physics"
    );
}
