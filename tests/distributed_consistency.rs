//! Cross-crate integration: distributed runs must be exactly equivalent
//! to serial ones under every decomposition, balancer and thread count,
//! and setup artifacts must survive the file format.

use trillium_blockforest::{distribute, file, morton_balance};
use trillium_core::driver::{run_distributed, run_distributed_probed};
use trillium_core::prelude::*;

/// 27 ranks in a 3×3×3 decomposition against the single-rank reference —
/// exercises every link type (faces, edges) in every orientation.
#[test]
fn twenty_seven_ranks_bitwise_equal() {
    let probes: Vec<[i64; 3]> =
        vec![[0, 0, 0], [17, 17, 17], [9, 8, 7], [5, 12, 9], [17, 0, 9], [6, 6, 6], [11, 12, 13]];
    let r1 =
        run_distributed_probed(&Scenario::lid_driven_cavity(18, 1, 0.07, 0.06), 1, 1, 30, &probes);
    let r27 =
        run_distributed_probed(&Scenario::lid_driven_cavity(18, 3, 0.07, 0.06), 27, 1, 30, &probes);
    let (p1, p27) = (r1.probes(), r27.probes());
    assert_eq!(p1.len(), probes.len());
    for ((c1, u1), (c2, u2)) in p1.iter().zip(&p27) {
        assert_eq!(c1, c2);
        assert_eq!(u1, u2, "velocity mismatch at {c1:?}");
    }
}

/// Unbalanced rank counts: 5 ranks over 8 blocks (some ranks own 2
/// blocks, mixing local and remote links on the same rank).
#[test]
fn uneven_rank_block_ratio_equals_reference() {
    let probes: Vec<[i64; 3]> = vec![[2, 3, 4], [12, 13, 14], [8, 8, 8]];
    let r1 =
        run_distributed_probed(&Scenario::lid_driven_cavity(16, 1, 0.05, 0.08), 1, 1, 25, &probes);
    let r5 =
        run_distributed_probed(&Scenario::lid_driven_cavity(16, 2, 0.05, 0.08), 5, 1, 25, &probes);
    for ((_, u1), (_, u5)) in r1.probes().iter().zip(&r5.probes()) {
        assert_eq!(u1, u5);
    }
}

/// The channel scenario (sparse blocks from the obstacle, mixed boundary
/// condition types) across decompositions.
#[test]
fn channel_obstacle_decomposition_invariant() {
    // Note: all probes lie in fluid (the obstacle is a radius-3.2 sphere
    // at [16, 8, 8]; solid cells hold meaningless PDF data).
    let probes: Vec<[i64; 3]> = vec![[4, 4, 4], [20, 10, 8], [30, 3, 12], [16, 14, 8]];
    let s1 = Scenario::channel_with_obstacle([32, 16, 16], [1, 1, 1], 0.07, 0.03, 0.2);
    let s8 = Scenario::channel_with_obstacle([32, 16, 16], [2, 2, 2], 0.07, 0.03, 0.2);
    let r1 = run_distributed_probed(&s1, 1, 1, 40, &probes);
    let r8 = run_distributed_probed(&s8, 8, 1, 40, &probes);
    assert!(!r1.has_nan() && !r8.has_nan());
    for ((c, u1), (_, u8)) in r1.probes().iter().zip(&r8.probes()) {
        for d in 0..3 {
            assert!(
                (u1[d] - u8[d]).abs() < 1e-13,
                "mismatch at {c:?} axis {d}: {} vs {}",
                u1[d],
                u8[d]
            );
        }
    }
    // Identical fluid-cell accounting.
    assert_eq!(r1.total_stats().fluid_cells, r8.total_stats().fluid_cells);
}

/// A forest written to the §2.2 binary format and loaded back drives an
/// identical distribution (the "setup on one machine, simulate on
/// another" workflow).
#[test]
fn forest_file_roundtrip_preserves_distribution() {
    let scenario = Scenario::lid_driven_cavity(24, 2, 0.05, 0.1);
    let mut forest = scenario.make_forest(4);
    morton_balance(&mut forest, 4);
    let data = file::save(&forest);
    let loaded = file::load(&data).expect("load");
    let views_a = distribute(&forest);
    let views_b = distribute(&loaded);
    assert_eq!(views_a.len(), views_b.len());
    for (a, b) in views_a.iter().zip(&views_b) {
        assert_eq!(a.rank, b.rank);
        assert_eq!(a.blocks.len(), b.blocks.len());
        for (ba, bb) in a.blocks.iter().zip(&b.blocks) {
            assert_eq!(ba.id, bb.id);
            assert_eq!(ba.coords, bb.coords);
            assert_eq!(ba.links, bb.links);
        }
    }
}

/// Graph-partitioner balancing also yields a correct distributed run
/// (different block-to-rank mapping, same physics).
#[test]
fn graph_balanced_sphere_runs_clean() {
    use std::sync::Arc;
    use trillium_core::pipeline::{setup_domain, Balancer};
    use trillium_geometry::vec3::vec3;
    use trillium_geometry::AnalyticSdf;
    let sdf = Arc::new(AnalyticSdf::Sphere { center: vec3(0.0, 0.0, 0.0), radius: 1.0 });
    let setup = setup_domain("sphere", sdf, 0.09, [8, 8, 8], 3, Balancer::Graph, 0.06, [0.0; 3]);
    let r = run_distributed(&setup.scenario, 3, 1, 15);
    assert!(!r.has_nan());
    assert!(r.mass_drift().abs() < 1e-10, "closed sphere must conserve mass");
    assert!(r.total_stats().fluid_cells > 0);
}

/// The overlapped schedule must be PDF-level bitwise identical to the
/// synchronous reference on a deliberately *skewed* vascular run: 4 ranks
/// with rank 0 statically overloaded, sparse row-interval blocks, and a
/// mix of local and remote links — under both 1 and 4 threads per rank.
/// This is the end-to-end guarantee behind enabling
/// [`DriverConfig::overlap`]: identical physics, different schedule.
#[test]
fn overlapped_skewed_vascular_bitwise_equal() {
    use std::sync::Arc;
    use trillium_core::driver::{run_distributed_with, DriverConfig};
    use trillium_geometry::voxelize::VoxelizeConfig;
    use trillium_geometry::{VascularTree, VascularTreeParams};
    let scenario = || {
        let tree = VascularTree::generate(&VascularTreeParams {
            generations: 4,
            root_radius: 1.2,
            root_length: 7.0,
            ..Default::default()
        });
        Scenario::from_sdf(
            "vascular-overlap",
            Arc::new(tree),
            0.25,
            [16, 16, 16],
            0.06,
            [0.0, 0.0, 0.05],
            1.0,
            VoxelizeConfig::default(),
        )
        .with_skewed_balance(0.7)
    };
    let cfg_sync = DriverConfig { collect_pdfs: true, ..Default::default() };
    let sync = run_distributed_with(&scenario(), 4, 1, 25, &[], cfg_sync);
    assert!(!sync.has_nan());
    let reference = sync.pdf_dump();
    assert!(!reference.is_empty());
    for threads in [1usize, 4] {
        let cfg = DriverConfig { overlap: true, collect_pdfs: true, ..Default::default() };
        let over = run_distributed_with(&scenario(), 4, threads, 25, &[], cfg);
        assert!(!over.has_nan());
        assert_eq!(reference, over.pdf_dump(), "overlap deviates with {threads} threads/rank");
        assert_eq!(sync.total_stats().cells, over.total_stats().cells);
        assert_eq!(sync.total_stats().fluid_cells, over.total_stats().fluid_cells);
        assert!(over.overlap_hidden() > 0.0, "no compute was hidden");
    }
}

/// Hybrid threading (the αPβT configurations) changes nothing about the
/// results, only the execution.
#[test]
fn thread_count_does_not_change_results() {
    let s = Scenario::lid_driven_cavity(16, 2, 0.06, 0.07);
    let probes: Vec<[i64; 3]> = vec![[3, 3, 3], [12, 4, 9]];
    let a = run_distributed_probed(&s, 2, 1, 20, &probes);
    let b = run_distributed_probed(&s, 2, 4, 20, &probes);
    for ((_, ua), (_, ub)) in a.probes().iter().zip(&b.probes()) {
        assert_eq!(ua, ub);
    }
}

/// A full-state block checkpoint (`save_block_full`) taken mid-run
/// captures *everything* the dynamics depend on: a restored copy stepped
/// in lockstep with the original stays bitwise identical.
#[test]
fn block_checkpoint_roundtrip_resumes_bitwise() {
    use trillium_core::checkpoint::{restore_block_full, save_block_full};
    let s = Scenario::lid_driven_cavity(12, 1, 0.06, 0.08);
    let views = distribute(&s.make_forest(1));
    let mut block = s.build_block(&views[0].blocks[0]);
    let rel = s.relaxation;
    for _ in 0..5 {
        block.apply_boundaries();
        block.stream_collide(rel);
    }
    let snap = save_block_full(&block);
    let mut restored = restore_block_full(&snap, s.boundary).expect("restore");
    for _ in 0..5 {
        block.apply_boundaries();
        block.stream_collide(rel);
        restored.apply_boundaries();
        restored.stream_collide(rel);
    }
    assert_eq!(save_block_full(&block), save_block_full(&restored));
}

/// Checkpoint/restart composed with the *overlapped* schedule: a
/// resilient overlapped run that crashes mid-way restores from a
/// checkpoint written after overlapped steps and still converges
/// bitwise to the plain synchronous reference — the checkpoint captures
/// the complete state no matter which schedule produced it.
#[test]
fn overlapped_checkpoint_restart_matches_sync_reference() {
    use std::sync::Arc;
    use trillium_core::driver::{run_distributed_with, DriverConfig};
    use trillium_geometry::voxelize::VoxelizeConfig;
    use trillium_geometry::{VascularTree, VascularTreeParams};
    let scenario = || {
        let tree = VascularTree::generate(&VascularTreeParams {
            generations: 4,
            root_radius: 1.2,
            root_length: 7.0,
            ..Default::default()
        });
        Scenario::from_sdf(
            "vascular-ckpt",
            Arc::new(tree),
            0.25,
            [16, 16, 16],
            0.06,
            [0.0, 0.0, 0.05],
            1.0,
            VoxelizeConfig::default(),
        )
        .with_skewed_balance(0.7)
    };
    let cfg_sync = DriverConfig { collect_pdfs: true, ..Default::default() };
    let reference = run_distributed_with(&scenario(), 4, 1, 24, &[], cfg_sync);
    assert!(!reference.has_nan());
    // Crash rank 1 at step 13: recovery restores the step-12 checkpoint,
    // which was itself written after 12 overlapped steps.
    let rc = ResilienceConfig {
        checkpoint_every: 6,
        fault: Some(FaultConfig::new(11).with_crash(1, 13)),
        driver: DriverConfig { overlap: true, collect_pdfs: true, ..Default::default() },
        ..ResilienceConfig::default()
    };
    let res = run_distributed_resilient(&scenario(), 4, 1, 24, &[], &rc).expect("recoverable");
    assert_eq!(res.recoveries(), 1, "the injected crash must trigger one recovery");
    assert_eq!(
        reference.pdf_dump(),
        res.run.pdf_dump(),
        "restart from an overlapped-schedule checkpoint deviates from the sync reference"
    );
}
