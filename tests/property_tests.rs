//! Property-based tests (proptest) of the core invariants.

use proptest::prelude::*;
use trillium_field::{AosPdfField, PdfField, Shape, SoaPdfField};
use trillium_kernels as kernels;
use trillium_lattice::{Relaxation, D3Q19, MAGIC_TRT};

/// Strategy: physically plausible PDF perturbations around equilibrium.
fn pdf_state(n: usize) -> impl Strategy<Value = Vec<f64>> {
    let cells = (n + 2) * (n + 2) * (n + 2) * 19;
    proptest::collection::vec(-1e-3..1e-3f64, cells)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Collision conserves mass and momentum for arbitrary (bounded)
    /// states — cell-local invariants of the TRT operator.
    #[test]
    fn collision_invariants_hold(perturbation in pdf_state(5), tau in 0.55f64..2.5) {
        let n = 5;
        let shape = Shape::cube(n);
        let mut src = AosPdfField::<D3Q19>::new(shape);
        src.fill_equilibrium(1.0, [0.0; 3]);
        for (v, p) in src.data_mut().iter_mut().zip(&perturbation) {
            *v += p;
        }
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        kernels::generic::stream_collide_trt(&src, &mut dst, Relaxation::trt_from_tau(tau, MAGIC_TRT));
        for (x, y, z) in shape.interior().iter() {
            // Pre-collision (pulled) state.
            let mut f = [0.0; 19];
            for q in 0..19 {
                let c = trillium_lattice::d3q19::C[q];
                f[q] = src.get(x - c[0] as i32, y - c[1] as i32, z - c[2] as i32, q);
            }
            let rho_pre = trillium_lattice::density::<D3Q19>(&f);
            let j_pre = trillium_lattice::momentum::<D3Q19>(&f);
            let rho_post = dst.density(x, y, z);
            let u_post = dst.velocity(x, y, z);
            prop_assert!((rho_pre - rho_post).abs() < 1e-12);
            for d in 0..3 {
                prop_assert!((j_pre[d] - rho_post * u_post[d]).abs() < 1e-12);
            }
        }
    }

    /// All kernel tiers agree on arbitrary states (not only near-
    /// equilibrium ones): the optimization ladder is semantics-preserving.
    #[test]
    fn kernel_tiers_agree(perturbation in pdf_state(6), tau in 0.6f64..2.0) {
        let n = 6;
        let shape = Shape::cube(n);
        let rel = Relaxation::trt_from_tau(tau, MAGIC_TRT);
        let mut aos = AosPdfField::<D3Q19>::new(shape);
        let mut soa = SoaPdfField::<D3Q19>::new(shape);
        aos.fill_equilibrium(1.0, [0.01, 0.0, -0.01]);
        for (v, p) in aos.data_mut().iter_mut().zip(&perturbation) {
            *v += p;
        }
        let mut buf = vec![0.0; 19];
        for (x, y, z) in shape.with_ghosts().iter() {
            aos.get_cell(x, y, z, &mut buf);
            soa.set_cell(x, y, z, &buf);
        }
        let mut d_gen = AosPdfField::<D3Q19>::new(shape);
        let mut d_spec = AosPdfField::<D3Q19>::new(shape);
        let mut d_soa = SoaPdfField::<D3Q19>::new(shape);
        let mut d_avx = SoaPdfField::<D3Q19>::new(shape);
        kernels::generic::stream_collide_trt(&aos, &mut d_gen, rel);
        kernels::d3q19::stream_collide_trt(&aos, &mut d_spec, rel);
        kernels::soa::stream_collide_trt(&soa, &mut d_soa, rel);
        kernels::avx::stream_collide_trt(&soa, &mut d_avx, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let g = d_gen.get(x, y, z, q);
                prop_assert!((d_spec.get(x, y, z, q) - g).abs() < 1e-13);
                prop_assert!((d_soa.get(x, y, z, q) - g).abs() < 1e-13);
                prop_assert!((d_avx.get(x, y, z, q) - g).abs() < 1e-13);
            }
        }
    }

    /// Ghost pack → unpack is the identity on the transferred PDFs, for
    /// every direction and any block size.
    #[test]
    fn ghost_roundtrip_identity(n in 3usize..8, seed in 0u64..1000) {
        use trillium_comm::{pack_face, pdfs_crossing, unpack_face};
        use rand::{Rng, SeedableRng};
        let shape = Shape::cube(n);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                a.set(x, y, z, q, rng.gen_range(-1.0..1.0));
            }
        }
        for d in trillium_blockforest::NEIGHBOR_DIRS {
            let qs = pdfs_crossing::<D3Q19>(d);
            let mut buf = Vec::new();
            pack_face::<D3Q19, _>(&a, d, &mut buf);
            prop_assert_eq!(buf.len(), shape.boundary_slab(d, 1).num_cells() * qs.len() * 8);
            let mut b = AosPdfField::<D3Q19>::new(shape);
            // Receiver sees the sender in direction −d.
            unpack_face::<D3Q19, _>(&mut b, [-d[0], -d[1], -d[2]], &buf);
            // Values must match the source boundary slab, cell for cell.
            let sregion = shape.boundary_slab(d, 1);
            let dregion = shape.ghost_slab([-d[0], -d[1], -d[2]], 1);
            for ((sx, sy, sz), (dx, dy, dz)) in sregion.iter().zip(dregion.iter()) {
                for &q in &qs {
                    prop_assert_eq!(a.get(sx, sy, sz, q), b.get(dx, dy, dz, q));
                }
            }
        }
    }

    /// BlockId navigation: arbitrary child paths pack/unpack and walk up
    /// to the original root.
    #[test]
    fn block_id_paths(root in 0u64..1_000_000, path in proptest::collection::vec(0u8..8, 0..10)) {
        use trillium_blockforest::BlockId;
        let mut id = BlockId::root(root);
        for &o in &path {
            id = id.child(o);
        }
        prop_assert_eq!(id.level() as usize, path.len());
        prop_assert_eq!(id.root_index(), root);
        prop_assert_eq!(BlockId::unpack(id.pack()), id);
        for (l, &o) in path.iter().enumerate() {
            prop_assert_eq!(id.octant_at(l as u8), o);
        }
        let mut up = id;
        for _ in 0..path.len() {
            up = up.parent().unwrap();
        }
        prop_assert_eq!(up, BlockId::root(root));
        prop_assert!(up.parent().is_none());
    }

    /// Graph partitioner: any connected grid graph is split into k
    /// non-empty, balanced parts.
    #[test]
    fn partitioner_balance_property(nx in 4usize..9, ny in 4usize..9, k in 2usize..9) {
        use trillium_partition::{partition_kway, Graph, PartitionOptions};
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx { edges.push((idx(x, y), idx(x + 1, y), 1.0)); }
                if y + 1 < ny { edges.push((idx(x, y), idx(x, y + 1), 1.0)); }
            }
        }
        let g = Graph::from_edges(nx * ny, &edges, None);
        let assign = partition_kway(&g, k, &PartitionOptions::default());
        prop_assert_eq!(assign.len(), nx * ny);
        let mut seen = vec![false; k];
        for &a in &assign {
            prop_assert!((a as usize) < k);
            seen[a as usize] = true;
        }
        prop_assert!(seen.iter().all(|&s| s));
        prop_assert!(g.balance(&assign, k) <= 1.35);
    }

    /// Relaxation parameter algebra round-trips for arbitrary valid
    /// viscosities and magic parameters.
    #[test]
    fn relaxation_roundtrips(nu in 1e-4f64..1.0, magic in 0.05f64..0.5) {
        let tau = Relaxation::tau_from_viscosity(nu);
        prop_assert!((Relaxation::viscosity_from_tau(tau) - nu).abs() < 1e-12);
        let r = Relaxation::trt_from_tau(tau, magic);
        prop_assert!((r.magic() - magic).abs() < 1e-9);
        prop_assert!(r.is_stable());
    }

    /// The forest file format round-trips arbitrary rank/workload data.
    #[test]
    fn forest_file_roundtrip(procs in 1u32..100_000, seed in 0u64..500) {
        use rand::{Rng, SeedableRng};
        use trillium_blockforest::{file, SetupForest};
        use trillium_geometry::{vec3::vec3, Aabb};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(3.0, 3.0, 3.0));
        let mut f = SetupForest::uniform(domain, [3, 3, 3], [12, 12, 12]);
        f.num_processes = procs;
        for b in f.blocks.iter_mut() {
            b.rank = rng.gen_range(0..procs);
            b.workload = rng.gen_range(0..1728) as f64;
        }
        let data = file::save(&f);
        let g = file::load(&data).unwrap();
        prop_assert_eq!(g.num_processes, procs);
        for (a, b) in f.blocks.iter().zip(&g.blocks) {
            prop_assert_eq!(a.rank, b.rank);
            prop_assert_eq!(a.workload, b.workload);
            prop_assert_eq!(a.id, b.id);
        }
    }
}
