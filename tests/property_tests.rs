//! Randomized property tests of the core invariants.
//!
//! Each property runs over a deterministic sweep of seeded random cases
//! (a lightweight stand-in for proptest, which is unavailable offline).
//! The invariants and case counts match the original proptest suite.

use rand::{Rng, SeedableRng};
use trillium_field::{AosPdfField, PdfField, Shape, SoaPdfField};
use trillium_kernels as kernels;
use trillium_lattice::{Relaxation, D3Q19, MAGIC_TRT};

const CASES: u64 = 16;

/// Fills a field with equilibrium plus a bounded random perturbation.
fn perturbed_field(n: usize, u0: [f64; 3], rng: &mut rand::rngs::StdRng) -> AosPdfField<D3Q19> {
    let shape = Shape::cube(n);
    let mut src = AosPdfField::<D3Q19>::new(shape);
    src.fill_equilibrium(1.0, u0);
    for v in src.data_mut().iter_mut() {
        *v += rng.gen_range(-1e-3..1e-3);
    }
    src
}

/// Collision conserves mass and momentum for arbitrary (bounded)
/// states — cell-local invariants of the TRT operator.
#[test]
fn collision_invariants_hold() {
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let n = 5;
        let shape = Shape::cube(n);
        let src = perturbed_field(n, [0.0; 3], &mut rng);
        let tau = rng.gen_range(0.55..2.5);
        let mut dst = AosPdfField::<D3Q19>::new(shape);
        kernels::generic::stream_collide_trt(
            &src,
            &mut dst,
            Relaxation::trt_from_tau(tau, MAGIC_TRT),
        );
        for (x, y, z) in shape.interior().iter() {
            // Pre-collision (pulled) state.
            let mut f = [0.0; 19];
            for q in 0..19 {
                let c = trillium_lattice::d3q19::C[q];
                f[q] = src.get(x - c[0] as i32, y - c[1] as i32, z - c[2] as i32, q);
            }
            let rho_pre = trillium_lattice::density::<D3Q19>(&f);
            let j_pre = trillium_lattice::momentum::<D3Q19>(&f);
            let rho_post = dst.density(x, y, z);
            let u_post = dst.velocity(x, y, z);
            assert!((rho_pre - rho_post).abs() < 1e-12);
            for d in 0..3 {
                assert!((j_pre[d] - rho_post * u_post[d]).abs() < 1e-12);
            }
        }
    }
}

/// All kernel tiers agree on arbitrary states (not only near-
/// equilibrium ones): the optimization ladder is semantics-preserving.
#[test]
fn kernel_tiers_agree() {
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(100 + seed);
        let n = 6;
        let shape = Shape::cube(n);
        let tau = rng.gen_range(0.6..2.0);
        let rel = Relaxation::trt_from_tau(tau, MAGIC_TRT);
        let aos = perturbed_field(n, [0.01, 0.0, -0.01], &mut rng);
        let mut soa = SoaPdfField::<D3Q19>::new(shape);
        let mut buf = vec![0.0; 19];
        for (x, y, z) in shape.with_ghosts().iter() {
            aos.get_cell(x, y, z, &mut buf);
            soa.set_cell(x, y, z, &buf);
        }
        let mut d_gen = AosPdfField::<D3Q19>::new(shape);
        let mut d_spec = AosPdfField::<D3Q19>::new(shape);
        let mut d_soa = SoaPdfField::<D3Q19>::new(shape);
        let mut d_avx = SoaPdfField::<D3Q19>::new(shape);
        kernels::generic::stream_collide_trt(&aos, &mut d_gen, rel);
        kernels::d3q19::stream_collide_trt(&aos, &mut d_spec, rel);
        kernels::soa::stream_collide_trt(&soa, &mut d_soa, rel);
        kernels::avx::stream_collide_trt(&soa, &mut d_avx, rel);
        for (x, y, z) in shape.interior().iter() {
            for q in 0..19 {
                let g = d_gen.get(x, y, z, q);
                assert!((d_spec.get(x, y, z, q) - g).abs() < 1e-13);
                assert!((d_soa.get(x, y, z, q) - g).abs() < 1e-13);
                assert!((d_avx.get(x, y, z, q) - g).abs() < 1e-13);
            }
        }
    }
}

/// Ghost pack → unpack is the identity on the transferred PDFs, for
/// every direction and any block size.
#[test]
fn ghost_roundtrip_identity() {
    use trillium_comm::{pack_face, pdfs_crossing, unpack_face};
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(200 + seed);
        let n = rng.gen_range(3usize..8);
        let shape = Shape::cube(n);
        let mut a = AosPdfField::<D3Q19>::new(shape);
        for (x, y, z) in shape.with_ghosts().iter() {
            for q in 0..19 {
                a.set(x, y, z, q, rng.gen_range(-1.0..1.0));
            }
        }
        for d in trillium_blockforest::NEIGHBOR_DIRS {
            let qs = pdfs_crossing::<D3Q19>(d);
            let mut buf = Vec::new();
            pack_face::<D3Q19, _>(&a, d, &mut buf);
            assert_eq!(buf.len(), shape.boundary_slab(d, 1).num_cells() * qs.len() * 8);
            let mut b = AosPdfField::<D3Q19>::new(shape);
            // Receiver sees the sender in direction −d.
            unpack_face::<D3Q19, _>(&mut b, [-d[0], -d[1], -d[2]], &buf);
            // Values must match the source boundary slab, cell for cell.
            let sregion = shape.boundary_slab(d, 1);
            let dregion = shape.ghost_slab([-d[0], -d[1], -d[2]], 1);
            for ((sx, sy, sz), (dx, dy, dz)) in sregion.iter().zip(dregion.iter()) {
                for &q in &qs {
                    assert_eq!(a.get(sx, sy, sz, q), b.get(dx, dy, dz, q));
                }
            }
        }
    }
}

/// BlockId navigation: arbitrary child paths pack/unpack and walk up
/// to the original root.
#[test]
fn block_id_paths() {
    use trillium_blockforest::BlockId;
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(300 + seed);
        let root = rng.gen_range(0u64..1_000_000);
        let len = rng.gen_range(0usize..10);
        let path: Vec<u8> = (0..len).map(|_| rng.gen_range(0u8..8)).collect();
        let mut id = BlockId::root(root);
        for &o in &path {
            id = id.child(o);
        }
        assert_eq!(id.level() as usize, path.len());
        assert_eq!(id.root_index(), root);
        assert_eq!(BlockId::unpack(id.pack()), id);
        for (l, &o) in path.iter().enumerate() {
            assert_eq!(id.octant_at(l as u8), o);
        }
        let mut up = id;
        for _ in 0..path.len() {
            up = up.parent().unwrap();
        }
        assert_eq!(up, BlockId::root(root));
        assert!(up.parent().is_none());
    }
}

/// Graph partitioner: any connected grid graph is split into k
/// non-empty, balanced parts.
#[test]
fn partitioner_balance_property() {
    use trillium_partition::{partition_kway, Graph, PartitionOptions};
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(400 + seed);
        let nx = rng.gen_range(4usize..9);
        let ny = rng.gen_range(4usize..9);
        let k = rng.gen_range(2usize..9);
        let idx = |x: usize, y: usize| (y * nx + x) as u32;
        let mut edges = Vec::new();
        for y in 0..ny {
            for x in 0..nx {
                if x + 1 < nx {
                    edges.push((idx(x, y), idx(x + 1, y), 1.0));
                }
                if y + 1 < ny {
                    edges.push((idx(x, y), idx(x, y + 1), 1.0));
                }
            }
        }
        let g = Graph::from_edges(nx * ny, &edges, None);
        let assign = partition_kway(&g, k, &PartitionOptions::default());
        assert_eq!(assign.len(), nx * ny);
        let mut seen = vec![false; k];
        for &a in &assign {
            assert!((a as usize) < k);
            seen[a as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
        assert!(g.balance(&assign, k) <= 1.35);
    }
}

/// Relaxation parameter algebra round-trips for arbitrary valid
/// viscosities and magic parameters.
#[test]
fn relaxation_roundtrips() {
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(500 + seed);
        let nu = rng.gen_range(1e-4f64..1.0);
        let magic = rng.gen_range(0.05f64..0.5);
        let tau = Relaxation::tau_from_viscosity(nu);
        assert!((Relaxation::viscosity_from_tau(tau) - nu).abs() < 1e-12);
        let r = Relaxation::trt_from_tau(tau, magic);
        assert!((r.magic() - magic).abs() < 1e-9);
        assert!(r.is_stable());
    }
}

/// The forest file format round-trips arbitrary rank/workload data.
#[test]
fn forest_file_roundtrip() {
    use trillium_blockforest::{file, SetupForest};
    use trillium_geometry::{vec3::vec3, Aabb};
    for seed in 0..CASES {
        let mut rng = rand::rngs::StdRng::seed_from_u64(600 + seed);
        let procs = rng.gen_range(1u32..100_000);
        let domain = Aabb::new(vec3(0.0, 0.0, 0.0), vec3(3.0, 3.0, 3.0));
        let mut f = SetupForest::uniform(domain, [3, 3, 3], [12, 12, 12]);
        f.num_processes = procs;
        for b in f.blocks.iter_mut() {
            b.rank = rng.gen_range(0..procs);
            b.workload = rng.gen_range(0..1728) as f64;
        }
        let data = file::save(&f);
        let g = file::load(&data).unwrap();
        assert_eq!(g.num_processes, procs);
        for (a, b) in f.blocks.iter().zip(&g.blocks) {
            assert_eq!(a.rank, b.rank);
            assert_eq!(a.workload, b.workload);
            assert_eq!(a.id, b.id);
        }
    }
}

/// Collectives deliver exact results under message reordering and
/// duplication: for 32 fault-plan seeds, barrier, sum/min-max-sum
/// reductions and allgather return bit-identical values to the
/// fault-free expectation on every rank.
#[test]
fn collectives_survive_fault_injection() {
    use trillium_comm::{FaultConfig, World};
    const RANKS: u32 = 4;
    let expect_sum: f64 = (0..RANKS).map(|r| (r + 1) as f64 * 0.5).sum();
    let expect_gather: Vec<f64> = (0..RANKS).map(|r| (r + 1) as f64 * 0.5).collect();
    for seed in 0..32u64 {
        let cfg = FaultConfig::new(seed).with_reordering(0.3, 3).with_duplicates(0.2);
        let results = World::run_with_faults(RANKS, cfg, |mut comm| {
            let v = (comm.rank() + 1) as f64 * 0.5;
            comm.barrier();
            let sum = comm.allreduce_sum_f64(v);
            let (mn, mx, s2) = comm.allreduce_minmaxsum_f64(v);
            let gathered = comm.allgather_f64(v);
            comm.barrier();
            let count = comm.allreduce_sum_u64(1);
            (sum, mn, mx, s2, gathered, count)
        });
        for (rank, (sum, mn, mx, s2, gathered, count)) in results.into_iter().enumerate() {
            assert_eq!(sum, expect_sum, "sum on rank {rank}, seed {seed}");
            assert_eq!(mn, 0.5, "min on rank {rank}, seed {seed}");
            assert_eq!(mx, RANKS as f64 * 0.5, "max on rank {rank}, seed {seed}");
            assert_eq!(s2, expect_sum, "fused sum on rank {rank}, seed {seed}");
            assert_eq!(gathered, expect_gather, "gather on rank {rank}, seed {seed}");
            assert_eq!(count, RANKS as u64, "count on rank {rank}, seed {seed}");
        }
    }
}
