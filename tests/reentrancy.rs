//! Driver re-entrancy: the distributed entry points hold no
//! process-global state, so one process can run many simulations —
//! sequentially or concurrently, through the classic `run_distributed_*`
//! wrappers or the per-rank `World::connect` + `drive_rank` API the job
//! service builds on. Every run must be bitwise identical to the same
//! run executed alone, and each run's observability must account only
//! for its own cohort's traffic.

use trillium_comm::World;
use trillium_core::driver::{drive_rank, plan_run, run_distributed_with};
use trillium_core::prelude::*;
use trillium_obs::SpanKind;

fn cavity() -> Scenario {
    Scenario::lid_driven_cavity(16, 2, 0.05, 0.08)
}

fn channel() -> Scenario {
    Scenario::channel_with_obstacle([32, 16, 16], [2, 1, 1], 0.06, 0.05, 0.2)
}

const STEPS: u64 = 12;

fn overlapped_pdfs() -> DriverConfig {
    DriverConfig { collect_pdfs: true, overlap: true, ..DriverConfig::default() }
}

fn run(s: &Scenario) -> RunResult {
    run_distributed_with(s, 2, 1, STEPS, &[], overlapped_pdfs())
}

/// Deterministic per-rank observability fingerprint: span counts plus
/// the comm counters folded into the metrics. Any cross-job bleed —
/// a recorder shared between runs, a message delivered into the wrong
/// cohort — shifts these.
fn obs_fingerprint(r: &RunResult) -> Vec<(u32, [u64; SpanKind::COUNT], u64, u64)> {
    r.ranks
        .iter()
        .map(|rr| {
            let o = rr.obs.as_ref().expect("timing obs is on by default");
            (
                rr.rank,
                o.counts,
                o.metrics.counter("comm.messages_sent"),
                o.metrics.counter("comm.bytes_sent"),
            )
        })
        .collect()
}

#[test]
fn two_sequential_runs_in_one_process_match_their_solo_baselines() {
    let (cav, chan) = (cavity(), channel());
    let cav_solo = run(&cav);
    let chan_solo = run(&chan);
    // Second invocations, same process, after unrelated runs already
    // created and tore down whole worlds.
    let cav_again = run(&cav);
    let chan_again = run(&chan);
    assert_eq!(cav_solo.pdf_dump(), cav_again.pdf_dump());
    assert_eq!(chan_solo.pdf_dump(), chan_again.pdf_dump());
    assert_eq!(obs_fingerprint(&cav_solo), obs_fingerprint(&cav_again));
    assert_eq!(obs_fingerprint(&chan_solo), obs_fingerprint(&chan_again));
}

#[test]
fn two_concurrent_runs_are_bitwise_identical_to_solo_with_no_metric_bleed() {
    let (cav, chan) = (cavity(), channel());
    let cav_solo = run(&cav);
    let chan_solo = run(&chan);

    // Two distinct cohorts with overlapped schedules, racing in one
    // process. Each spawns its own 2-rank world.
    let (cav_conc, chan_conc) = std::thread::scope(|scope| {
        let a = scope.spawn(|| run(&cav));
        let b = scope.spawn(|| run(&chan));
        (a.join().expect("cavity run panicked"), b.join().expect("channel run panicked"))
    });

    assert_eq!(cav_solo.pdf_dump(), cav_conc.pdf_dump(), "concurrent cavity diverged from solo");
    assert_eq!(chan_solo.pdf_dump(), chan_conc.pdf_dump(), "concurrent channel diverged from solo");
    // No cross-job metric bleed: every rank recorder saw exactly the
    // spans and comm traffic of its own run.
    assert_eq!(obs_fingerprint(&cav_solo), obs_fingerprint(&cav_conc));
    assert_eq!(obs_fingerprint(&chan_solo), obs_fingerprint(&chan_conc));
}

/// The job-service path: caller-owned communicator meshes from
/// `World::connect`, one `plan_run` per job, `drive_rank` per rank on
/// plain threads — two cohorts running concurrently, no `World::run`
/// involved.
#[test]
fn manual_cohorts_via_connect_and_drive_rank_match_solo() {
    let (cav, chan) = (cavity(), channel());
    let cav_solo = run(&cav);
    let chan_solo = run(&chan);

    let launch = |scenario: &Scenario| -> RunResult {
        let plan = plan_run(scenario, 2);
        let comms = World::connect(2, None);
        let ranks = std::thread::scope(|scope| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let plan = &plan;
                    scope.spawn(move || {
                        drive_rank(comm, plan, scenario, 1, STEPS, &[], overlapped_pdfs())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("rank panicked")).collect()
        });
        RunResult { steps: STEPS, ranks }
    };

    let (cav_manual, chan_manual) = std::thread::scope(|scope| {
        let a = scope.spawn(|| launch(&cav));
        let b = scope.spawn(|| launch(&chan));
        (a.join().expect("cavity cohort panicked"), b.join().expect("channel cohort panicked"))
    });

    assert_eq!(cav_solo.pdf_dump(), cav_manual.pdf_dump());
    assert_eq!(chan_solo.pdf_dump(), chan_manual.pdf_dump());
    assert_eq!(obs_fingerprint(&cav_solo), obs_fingerprint(&cav_manual));
    assert_eq!(obs_fingerprint(&chan_solo), obs_fingerprint(&chan_manual));
}
