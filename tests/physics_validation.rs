//! Physics validation across the whole stack: analytic flow solutions
//! reproduced by the distributed block-structured solver.

use trillium_core::blocksim::{boxed_block_flags, BlockSim};
use trillium_field::{CellFlags, Shape};
use trillium_kernels::BoundaryParams;
use trillium_lattice::{Relaxation, MAGIC_TRT};

/// Plane Couette flow: the gap between a resting and a moving plate
/// develops a linear velocity profile — an exact steady solution of the
/// LBM with halfway bounce-back walls.
#[test]
fn couette_flow_linear_profile() {
    let ny = 15;
    let shape = Shape::new(8, ny, 3, 1);
    let flags = boxed_block_flags(
        shape,
        [
            None, // periodic in x
            None,
            Some(CellFlags::NOSLIP),   // resting plate at −y
            Some(CellFlags::VELOCITY), // moving plate at +y
            None,                      // periodic in z
            None,
        ],
    );
    let u_wall = 0.04;
    let boundary = BoundaryParams { wall_velocity: [u_wall, 0.0, 0.0], ..Default::default() };
    let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
    let rel = Relaxation::trt_from_tau(0.9, MAGIC_TRT);
    for _ in 0..4000 {
        block.sync_periodic([true, false, true]);
        block.apply_boundaries();
        block.stream_collide(rel);
    }
    assert!(!block.has_nan());
    // Analytic: u(y) = u_wall (y + 1/2) / ny  with halfway walls.
    for y in 0..ny as i32 {
        let u = block.velocity(4, y, 1);
        let exact = u_wall * (y as f64 + 0.5) / ny as f64;
        assert!((u[0] - exact).abs() < 2e-4 * u_wall + 1e-7, "y={y}: u={} vs exact {exact}", u[0]);
        assert!(u[1].abs() < 1e-10 && u[2].abs() < 1e-10);
    }
}

/// Poiseuille flow: pressure-driven channel; TRT with Λ = 3/16 must
/// reproduce the parabola with walls exactly halfway between nodes, and
/// it must do so better than SRT at large relaxation times (the paper's
/// "TRT is more accurate" claim, quantified).
#[test]
fn poiseuille_trt_beats_srt_at_large_tau() {
    fn error(rel: Relaxation) -> f64 {
        let ny = 11;
        let shape = Shape::new(40, ny, 3, 1);
        let flags = boxed_block_flags(
            shape,
            [
                Some(CellFlags::PRESSURE),
                Some(CellFlags::PRESSURE_ALT),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                None,
                None,
            ],
        );
        let boundary = BoundaryParams {
            wall_velocity: [0.0; 3],
            pressure_density: 1.01,
            pressure_density_alt: 0.99,
        };
        let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
        for _ in 0..2500 {
            block.sync_periodic([false, false, true]);
            block.apply_boundaries();
            block.stream_collide(rel);
        }
        assert!(!block.has_nan());
        let profile: Vec<f64> = (0..ny as i32).map(|y| block.velocity(20, y, 1)[0]).collect();
        let shape_fn: Vec<f64> =
            (0..ny).map(|y| (y as f64 + 0.5) * (ny as f64 - 0.5 - y as f64)).collect();
        let amp = profile.iter().zip(&shape_fn).map(|(u, s)| u * s).sum::<f64>()
            / shape_fn.iter().map(|s| s * s).sum::<f64>();
        let err2: f64 = profile.iter().zip(&shape_fn).map(|(u, s)| (u - amp * s).powi(2)).sum();
        let norm2: f64 = shape_fn.iter().map(|s| (amp * s).powi(2)).sum();
        (err2 / norm2).sqrt()
    }
    let tau = 1.8;
    let e_srt = error(Relaxation::srt_from_tau(tau));
    let e_trt = error(Relaxation::trt_from_tau(tau, MAGIC_TRT));
    assert!(e_trt < 1e-3, "TRT profile error {e_trt}");
    assert!(e_srt > 5.0 * e_trt, "SRT {e_srt} vs TRT {e_trt}");
}

/// Momentum balance in Couette flow: the force the moving wall exerts on
/// the fluid equals the force the resting wall absorbs (steady state).
#[test]
fn couette_momentum_is_steady() {
    let shape = Shape::new(6, 9, 3, 1);
    let flags = boxed_block_flags(
        shape,
        [None, None, Some(CellFlags::NOSLIP), Some(CellFlags::VELOCITY), None, None],
    );
    let boundary = BoundaryParams { wall_velocity: [0.03, 0.0, 0.0], ..Default::default() };
    let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
    let rel = Relaxation::trt_from_viscosity(0.1);
    let mut previous = 0.0;
    for step in 0..3000 {
        block.sync_periodic([true, false, true]);
        block.apply_boundaries();
        block.stream_collide(rel);
        if step == 2499 {
            previous = block.fluid_momentum()[0];
        }
    }
    let now = block.fluid_momentum()[0];
    assert!(now > 0.0, "no momentum transferred");
    assert!(
        (now - previous).abs() < 1e-6 * now.abs().max(1e-12),
        "momentum still changing: {previous} -> {now}"
    );
}

/// Momentum-exchange force validation: in steady Couette flow the shear
/// force on the resting plate is analytic, `F_x = ρ ν U / H · A` (drag by
/// the fluid sliding over it), and the moving plate feels the opposite.
#[test]
fn couette_wall_shear_force_matches_analytic() {
    let (nx, ny, nz) = (8usize, 12usize, 8usize);
    let shape = Shape::new(nx, ny, nz, 1);
    let flags = boxed_block_flags(
        shape,
        [None, None, Some(CellFlags::NOSLIP), Some(CellFlags::VELOCITY), None, None],
    );
    let u_wall = 0.03;
    let nu = 0.1;
    let boundary = BoundaryParams { wall_velocity: [u_wall, 0.0, 0.0], ..Default::default() };
    let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
    let rel = Relaxation::trt_from_viscosity(nu);
    let mut f_bottom = [0.0; 3];
    let mut f_top = [0.0; 3];
    for _ in 0..5000 {
        block.sync_periodic([true, false, true]);
        block.apply_boundaries();
        f_bottom = block.boundary_force(CellFlags::NOSLIP);
        f_top = block.boundary_force(CellFlags::VELOCITY);
        block.stream_collide(rel);
    }
    // Analytic shear: τ = ρ ν U / H over the wall area (halfway walls:
    // the gap is exactly ny cells wide).
    let area = (nx * nz) as f64;
    let expect = 1.0 * nu * u_wall / ny as f64 * area;
    assert!(
        (f_bottom[0] - expect).abs() / expect < 0.02,
        "bottom wall force {} vs analytic {expect}",
        f_bottom[0]
    );
    // The driving plate feels the reaction.
    assert!(
        (f_top[0] + expect).abs() / expect < 0.02,
        "top wall force {} vs analytic {}",
        f_top[0],
        -expect
    );
    // Normal components are the hydrostatic pressure: the fluid pushes
    // each plate outward (−y on the bottom, +y on the top) with equal
    // magnitude; no force along the spanwise axis.
    assert!(f_bottom[1] < 0.0, "bottom plate must be pushed outward: {f_bottom:?}");
    assert!(f_top[1] > 0.0, "top plate must be pushed outward: {f_top:?}");
    assert!(
        (f_bottom[1] + f_top[1]).abs() < 1e-3 * f_bottom[1].abs(),
        "pressure forces unbalanced: {} vs {}",
        f_bottom[1],
        f_top[1]
    );
    assert!(f_bottom[2].abs() < 1e-6);
}

/// An obstacle in a channel feels a positive drag (force along the flow).
#[test]
fn obstacle_drag_points_downstream() {
    use trillium_field::{FlagField, FlagOps};
    let shape = Shape::new(24, 12, 12, 1);
    let mut flags = boxed_block_flags(
        shape,
        [
            Some(CellFlags::VELOCITY),
            Some(CellFlags::PRESSURE),
            Some(CellFlags::NOSLIP),
            Some(CellFlags::NOSLIP),
            Some(CellFlags::NOSLIP),
            Some(CellFlags::NOSLIP),
        ],
    );
    // A small solid sphere in the middle, tagged PRESSURE_ALT so its force
    // can be isolated from the channel walls... use NOSLIP for physics but
    // we must distinguish: use a dedicated helper field instead: tag the
    // obstacle cells NOSLIP and measure walls+obstacle separately by
    // masking a second flag bit is not available — so here we simply
    // compare total NOSLIP force with and without the obstacle.
    let carve = |flags: &mut FlagField| {
        for (x, y, z) in shape.with_ghosts().iter() {
            let d2 =
                (x as f64 - 12.0).powi(2) + (y as f64 - 5.5).powi(2) + (z as f64 - 5.5).powi(2);
            if d2 < 2.5f64.powi(2) {
                flags.set_flags(x, y, z, CellFlags::NOSLIP);
            }
        }
    };
    carve(&mut flags);
    let boundary = BoundaryParams { wall_velocity: [0.03, 0.0, 0.0], ..Default::default() };
    let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
    let rel = Relaxation::trt_from_viscosity(0.08);
    let mut drag = [0.0; 3];
    for _ in 0..600 {
        block.apply_boundaries();
        drag = block.boundary_force(CellFlags::NOSLIP);
        block.stream_collide(rel);
    }
    assert!(!block.has_nan());
    // The combined no-slip surfaces (walls + obstacle) resist the flow:
    // net force on them points downstream (+x).
    assert!(drag[0] > 1e-4, "no downstream drag: {drag:?}");
}

/// Galilean invariance sanity: a uniform co-moving state in a fully
/// periodic box is exactly preserved by the kernels.
#[test]
fn uniform_flow_in_periodic_box_is_invariant() {
    let shape = Shape::cube(8);
    let flags = boxed_block_flags(shape, [None; 6]);
    let u0 = [0.03, -0.02, 0.01];
    let mut block = BlockSim::from_flags(flags, BoundaryParams::default(), 1.0, u0);
    let rel = Relaxation::trt_from_tau(0.8, MAGIC_TRT);
    for _ in 0..50 {
        block.sync_periodic([true, true, true]);
        block.stream_collide(rel);
    }
    for (x, y, z) in shape.interior().iter() {
        let u = block.velocity(x, y, z);
        for d in 0..3 {
            assert!((u[d] - u0[d]).abs() < 1e-13, "drift at ({x},{y},{z})");
        }
    }
}

/// Decay of a shear wave: the viscosity measured from the decay rate
/// matches the nominal lattice viscosity (validates the relaxation-time /
/// viscosity relation through actual dynamics).
#[test]
fn shear_wave_decay_measures_viscosity() {
    use trillium_field::PdfField;
    let n = 32usize;
    let shape = Shape::new(n, 4, 4, 1);
    let flags = boxed_block_flags(shape, [None; 6]);
    let nu = 0.02;
    let mut block = BlockSim::from_flags(flags, BoundaryParams::default(), 1.0, [0.0; 3]);
    // Seed u_y(x) = A sin(2π x / n).
    let amp = 0.001;
    let mut feq = [0.0; 19];
    for (x, y, z) in shape.with_ghosts().iter() {
        let ux = 0.0;
        let uy = amp * (2.0 * std::f64::consts::PI * (x as f64 + 0.5) / n as f64).sin();
        trillium_lattice::equilibrium_all::<trillium_lattice::D3Q19>(1.0, [ux, uy, 0.0], &mut feq);
        block.src.set_cell(x, y, z, &feq);
    }
    let rel = Relaxation::trt_from_viscosity(nu);
    let k = 2.0 * std::f64::consts::PI / n as f64;
    let steps = 200;
    let a0 = amplitude(&block, n);
    for _ in 0..steps {
        block.sync_periodic([true, true, true]);
        block.stream_collide(rel);
    }
    let a1 = amplitude(&block, n);
    // u decays like exp(-ν k² t).
    let nu_measured = -(a1 / a0).ln() / (k * k * steps as f64);
    assert!(
        (nu_measured - nu).abs() / nu < 0.02,
        "measured viscosity {nu_measured} vs nominal {nu}"
    );

    fn amplitude(block: &BlockSim, n: usize) -> f64 {
        let k = 2.0 * std::f64::consts::PI / n as f64;
        // Project u_y onto the seeded sine mode.
        let mut num = 0.0;
        let mut den = 0.0;
        for x in 0..n as i32 {
            let s = (k * (x as f64 + 0.5)).sin();
            num += block.velocity(x, 1, 1)[1] * s;
            den += s * s;
        }
        num / den
    }
}

/// Grid-convergence order of the SRT operator: halving the lattice
/// spacing must cut the error by ~4× (second-order accuracy) on two
/// independent problems — the viscosity measured from shear-wave decay
/// (bulk truncation error, diffusive time scaling) and the wall-slip
/// deviation of a pressure-driven channel profile (boundary error).
/// The accepted ratio window [3.4, 4.6] brackets the asymptotic 4.0.
#[test]
fn srt_error_converges_at_second_order() {
    fn shear_wave_error(n: usize) -> f64 {
        use trillium_field::PdfField;
        let shape = Shape::new(n, 4, 4, 1);
        let flags = boxed_block_flags(shape, [None; 6]);
        let nu = 0.03;
        let mut block = BlockSim::from_flags(flags, BoundaryParams::default(), 1.0, [0.0; 3]);
        let k = 2.0 * std::f64::consts::PI / n as f64;
        let amp = 0.001;
        let mut feq = [0.0; 19];
        for (x, y, z) in shape.with_ghosts().iter() {
            let uy = amp * (k * (x as f64 + 0.5)).sin();
            trillium_lattice::equilibrium_all::<trillium_lattice::D3Q19>(
                1.0,
                [0.0, uy, 0.0],
                &mut feq,
            );
            block.src.set_cell(x, y, z, &feq);
        }
        let rel = Relaxation::srt_from_viscosity(nu);
        let project = |block: &BlockSim| -> f64 {
            let (mut num, mut den) = (0.0, 0.0);
            for x in 0..n as i32 {
                let s = (k * (x as f64 + 0.5)).sin();
                num += block.velocity(x, 1, 1)[1] * s;
                den += s * s;
            }
            num / den
        };
        let a0 = project(&block);
        // Diffusive scaling: 4× the steps on the doubled grid, so both
        // resolutions decay by the same physical fraction.
        let steps = n * n / 4;
        for _ in 0..steps {
            block.sync_periodic([true, true, true]);
            block.stream_collide(rel);
        }
        let nu_measured = -(project(&block) / a0).ln() / (k * k * steps as f64);
        (nu_measured - nu).abs() / nu
    }
    let (coarse, fine) = (shear_wave_error(8), shear_wave_error(16));
    let ratio = coarse / fine;
    assert!(
        (3.4..=4.6).contains(&ratio),
        "shear-wave error ratio {ratio} (coarse {coarse:e}, fine {fine:e})"
    );

    fn poiseuille_error(ny: usize, steps: usize) -> f64 {
        let shape = Shape::new(40, ny, 3, 1);
        let flags = boxed_block_flags(
            shape,
            [
                Some(CellFlags::PRESSURE),
                Some(CellFlags::PRESSURE_ALT),
                Some(CellFlags::NOSLIP),
                Some(CellFlags::NOSLIP),
                None,
                None,
            ],
        );
        let boundary = BoundaryParams {
            wall_velocity: [0.0; 3],
            pressure_density: 1.01,
            pressure_density_alt: 0.99,
        };
        let mut block = BlockSim::from_flags(flags, boundary, 1.0, [0.0; 3]);
        // τ = 1.2: far from the magic cancellation, so the SRT slip error
        // dominates and gives a clean 1/H² signal.
        let rel = Relaxation::srt_from_tau(1.2);
        for _ in 0..steps {
            block.sync_periodic([false, false, true]);
            block.apply_boundaries();
            block.stream_collide(rel);
        }
        assert!(!block.has_nan());
        let profile: Vec<f64> = (0..ny as i32).map(|y| block.velocity(20, y, 1)[0]).collect();
        let shape_fn: Vec<f64> =
            (0..ny).map(|y| (y as f64 + 0.5) * (ny as f64 - 0.5 - y as f64)).collect();
        let amp = profile.iter().zip(&shape_fn).map(|(u, s)| u * s).sum::<f64>()
            / shape_fn.iter().map(|s| s * s).sum::<f64>();
        let err2: f64 = profile.iter().zip(&shape_fn).map(|(u, s)| (u - amp * s).powi(2)).sum();
        let norm2: f64 = shape_fn.iter().map(|s| (amp * s).powi(2)).sum();
        (err2 / norm2).sqrt()
    }
    let (coarse, fine) = (poiseuille_error(11, 2000), poiseuille_error(22, 4000));
    let ratio = coarse / fine;
    assert!(
        (3.4..=4.6).contains(&ratio),
        "poiseuille error ratio {ratio} (coarse {coarse:e}, fine {fine:e})"
    );
}
