//! Integration tests of the unified observability layer.
//!
//! The span layer claims its timing categories are *disjoint*: kernel,
//! communication work, boundary, and exposed stall never overlap, so
//! their per-rank sum fits inside the rank's wall time and the fraction
//! metrics have a meaningful denominator. These tests pin that
//! invariant on a skewed 4-rank run under all four schedules (sync,
//! overlapped, resilient sync, resilient overlapped), check that the
//! folded `RankResult` timings are exactly the span totals, and verify
//! the chrome-trace export: events reproduce the accumulated totals
//! within float tolerance and the JSON round-trips through
//! `serde_json::from_str`.

use std::time::Duration;
use trillium_core::driver::{
    run_distributed_rebalanced, run_distributed_with, RebalanceConfig, RunResult,
};
use trillium_core::prelude::*;
use trillium_core::recovery::ResilienceConfig;
use trillium_obs::SpanKind;

/// Slack for comparing span sums against wall time: the categories are
/// measured with the same monotonic clock, so only accumulation
/// round-off separates them.
const TOL: f64 = 1e-6;

/// 8 blocks on 4 ranks with 70 % of them on rank 0 — enough skew that
/// the fast ranks demonstrably wait on the slow one.
fn skewed() -> Scenario {
    Scenario::lid_driven_cavity(16, 2, 0.06, 0.08).with_skewed_balance(0.7)
}

const STEPS: u64 = 12;

/// The timing-counter invariants every schedule must satisfy.
fn check_invariants(r: &RunResult, schedule: &str) {
    assert_eq!(r.ranks.len(), 4, "{schedule}: expected a 4-rank run");
    for rr in &r.ranks {
        let rank = rr.rank;
        let obs =
            rr.obs.as_ref().unwrap_or_else(|| panic!("{schedule} rank {rank}: no obs snapshot"));

        // Disjoint categories fit in the measured wall time.
        assert!(rr.wall_time > 0.0, "{schedule} rank {rank}: no wall time");
        assert!(
            rr.busy_time() <= rr.wall_time + TOL,
            "{schedule} rank {rank}: kernel + boundary + comm + stall = {} exceeds wall {}",
            rr.busy_time(),
            rr.wall_time
        );

        // The RankResult timing fields are exactly the folded span totals.
        let kernel = obs.total(SpanKind::Kernel)
            + obs.total(SpanKind::KernelInterior)
            + obs.total(SpanKind::KernelShell);
        assert_eq!(rr.kernel_time, kernel, "{schedule} rank {rank}: kernel fold");
        assert_eq!(
            rr.comm_time,
            obs.total(SpanKind::GhostPack) + obs.total(SpanKind::GhostDrain),
            "{schedule} rank {rank}: comm fold"
        );
        assert_eq!(rr.boundary_time, obs.total(SpanKind::Boundary), "{schedule} rank {rank}");
        assert_eq!(rr.ghost_stall_time, obs.total(SpanKind::Stall), "{schedule} rank {rank}");
        if rr.num_blocks > 0 {
            assert!(rr.kernel_time > 0.0, "{schedule} rank {rank}: kernel never ran");
            assert!(rr.comm_time > 0.0, "{schedule} rank {rank}: no exchange work");
        }

        // Every executed step opened exactly one Step span and one
        // histogram observation (resilient replays add more, never less).
        let step_spans = obs.count(SpanKind::Step);
        assert!(step_spans >= STEPS, "{schedule} rank {rank}: {step_spans} < {STEPS} step spans");
        let hist = obs
            .metrics
            .histogram("driver.step_seconds")
            .unwrap_or_else(|| panic!("{schedule} rank {rank}: no step histogram"));
        assert_eq!(hist.count, step_spans, "{schedule} rank {rank}: histogram/step mismatch");
        assert!(hist.sum <= rr.wall_time + TOL, "{schedule} rank {rank}: steps exceed wall");

        // Transport counters flowed into the metrics registry (a rank
        // the skew left without blocks legitimately sends nothing).
        if rr.num_blocks > 0 {
            assert!(obs.metrics.counter("comm.messages_sent") > 0, "{schedule} rank {rank}");
            assert!(obs.metrics.counter("comm.bytes_sent") > 0, "{schedule} rank {rank}");
        }
    }
    assert!(r.metrics().counter("comm.messages_sent") > 0, "{schedule}: no traffic at all");
}

#[test]
fn sync_schedule_keeps_timing_invariants() {
    let r = run_distributed_with(&skewed(), 4, 1, STEPS, &[], DriverConfig::default());
    check_invariants(&r, "sync");
    // Fraction metrics are finite and sensible even on fast runs.
    assert!(r.stall_fraction().is_finite() && r.stall_fraction() >= 0.0);
    assert!(r.comm_fraction() > 0.0 && r.comm_fraction() < 1.0);
}

#[test]
fn overlapped_schedule_keeps_timing_invariants_and_hides_stall() {
    let r = run_distributed_with(&skewed(), 4, 1, STEPS, &[], DriverConfig::overlapped());
    check_invariants(&r, "overlapped");
    // The overlapped schedule's structural claim, now derivable from the
    // span layer: it never blocks while runnable work remains.
    for rr in &r.ranks {
        assert_eq!(rr.ghost_stall_time, 0.0, "rank {}: overlap exposed stall", rr.rank);
        assert_eq!(rr.obs.as_ref().unwrap().count(SpanKind::Stall), 0);
    }
    assert!(r.overlap_hidden() > 0.0, "no communication was hidden");
}

#[test]
fn resilient_schedules_keep_timing_invariants() {
    for overlap in [false, true] {
        let schedule = if overlap { "resilient-overlapped" } else { "resilient-sync" };
        let rc = ResilienceConfig {
            checkpoint_every: 5,
            step_timeout: Duration::from_secs(5),
            driver: if overlap { DriverConfig::overlapped() } else { DriverConfig::default() },
            ..ResilienceConfig::default()
        };
        let res =
            trillium_core::recovery::run_distributed_resilient(&skewed(), 4, 1, STEPS, &[], &rc)
                .expect("recoverable");
        check_invariants(&res.run, schedule);
        // Checkpoint spans were recorded (initial snapshot has no span;
        // agreements at steps 5, 10 and 12 do).
        for rr in &res.run.ranks {
            let obs = rr.obs.as_ref().unwrap();
            assert!(obs.count(SpanKind::Checkpoint) >= 3, "{schedule}: missing checkpoints");
        }
        // The resilience ledger is mirrored into the metrics registry.
        let m = res.run.metrics();
        assert_eq!(
            m.counter("resilience.checkpoints"),
            res.run.ranks.len() as u64 * u64::from(res.checkpoints())
        );
        assert_eq!(m.counter("resilience.rollbacks"), 0);
    }
}

#[test]
fn faulted_resilient_run_counts_rollbacks_and_fault_events() {
    let rc = ResilienceConfig {
        checkpoint_every: 4,
        step_timeout: Duration::from_secs(2),
        fault: Some(FaultConfig::new(7).with_crash(2, 6)),
        ..ResilienceConfig::default()
    };
    let res = trillium_core::recovery::run_distributed_resilient(&skewed(), 4, 1, STEPS, &[], &rc)
        .expect("recoverable");
    assert_eq!(res.recoveries(), 1);
    let m = res.run.metrics();
    assert_eq!(m.counter("fault.crashes"), 1, "the injected crash must be counted");
    assert_eq!(m.counter("resilience.rollbacks"), 4, "every rank rolls back once");
    assert_eq!(m.counter("resilience.replayed_steps"), res.replayed_steps());
    // Recovery spans were recorded on every rank.
    for rr in &res.run.ranks {
        assert!(rr.obs.as_ref().unwrap().count(SpanKind::Recovery) >= 1);
    }
}

#[test]
fn rebalanced_run_records_migration_metrics() {
    let cfg = RebalanceConfig {
        every_n_steps: 5,
        threshold: 1.3,
        hysteresis: 2,
        ..RebalanceConfig::default()
    };
    let r = run_distributed_rebalanced(
        &Scenario::lid_driven_cavity(16, 2, 0.06, 0.08).with_skewed_balance(0.9),
        2,
        1,
        40,
        cfg,
    );
    assert!(r.total_migrations() >= 1, "skewed run must migrate");
    let m = r.metrics();
    assert!(m.counter("rebalance.rounds") >= 1);
    assert_eq!(m.counter("rebalance.migrations_in"), m.counter("rebalance.migrations_out"));
    assert!(m.counter("rebalance.migrations_in") as u32 >= 1);
    assert_eq!(m.counter("rebalance.plan_skipped"), 0, "planner output needs no sanitizing");
    // Every surviving block published its measured cost as a gauge.
    let gauges = m.gauges.iter().filter(|(n, _)| n.starts_with("rebalance.block_cost.")).count();
    assert_eq!(gauges, 8, "one cost gauge per block");
    for rr in &r.ranks {
        let obs = rr.obs.as_ref().unwrap();
        assert!(obs.count(SpanKind::RebalanceEpoch) >= 1);
        // comm_time no longer absorbs epoch coordination: the epoch span
        // is accounted separately.
        let report = rr.rebalance.as_ref().unwrap();
        assert!((report.epoch_time - obs.total(SpanKind::RebalanceEpoch)).abs() < TOL);
    }
}

#[test]
fn trace_events_reproduce_rank_timings_and_round_trip() {
    let cfg = DriverConfig::overlapped().with_trace();
    let r = run_distributed_with(&skewed(), 4, 1, STEPS, &[], cfg);
    for rr in &r.ranks {
        let obs = rr.obs.as_ref().unwrap();
        assert!(!obs.events.is_empty(), "rank {}: trace mode captured nothing", rr.rank);
        // Per-rank span sums from the event stream reproduce the
        // RankResult timings within float tolerance (events store µs).
        let kernel = obs.trace_total(SpanKind::Kernel)
            + obs.trace_total(SpanKind::KernelInterior)
            + obs.trace_total(SpanKind::KernelShell);
        assert!((kernel - rr.kernel_time).abs() < 1e-9 * obs.events.len() as f64 + 1e-12);
        let comm = obs.trace_total(SpanKind::GhostPack) + obs.trace_total(SpanKind::GhostDrain);
        assert!((comm - rr.comm_time).abs() < 1e-9 * obs.events.len() as f64 + 1e-12);
        assert!(
            (obs.trace_total(SpanKind::Boundary) - rr.boundary_time).abs()
                < 1e-9 * obs.events.len() as f64 + 1e-12
        );
    }

    // The export is valid chrome-trace JSON and survives a parse/print
    // round trip through the serde_json shim.
    let v = r.chrome_trace();
    let text = v.to_string();
    let parsed = serde_json::from_str(&text).expect("chrome trace must be valid JSON");
    assert_eq!(parsed.to_string(), text, "round trip must be stable");

    let events = parsed.get("traceEvents").and_then(|e| e.as_array()).expect("traceEvents");
    // One metadata lane per rank, X slices for everything else.
    let lanes: Vec<u64> = events
        .iter()
        .filter(|e| e.get("ph").and_then(|p| p.as_str()) == Some("M"))
        .map(|e| e.get("tid").and_then(|t| t.as_u64()).unwrap())
        .collect();
    assert_eq!(lanes, vec![0, 1, 2, 3], "one named lane per rank");
    for e in events {
        let ph = e.get("ph").and_then(|p| p.as_str()).unwrap();
        assert!(ph == "M" || ph == "X", "unexpected phase {ph}");
        if ph == "X" {
            assert!(e.get("ts").and_then(|t| t.as_f64()).unwrap() >= 0.0);
            assert!(e.get("dur").and_then(|d| d.as_f64()).unwrap() >= 0.0);
            assert!(e.get("args").and_then(|a| a.get("step")).is_some());
        }
    }
}

#[test]
fn disabled_recorder_reports_no_timings_and_no_nan_fractions() {
    let cfg = DriverConfig { obs: trillium_core::ObsConfig::off(), ..DriverConfig::default() };
    let r = run_distributed_with(&skewed(), 4, 1, 4, &[], cfg);
    assert!(!r.has_nan());
    for rr in &r.ranks {
        assert!(rr.obs.is_none(), "disabled recorder must not allocate a snapshot");
        assert_eq!(rr.wall_time, 0.0);
        assert_eq!(rr.busy_time(), 0.0);
    }
    // The zero-guard: fractions come back 0.0, not NaN (the old code
    // divided by a sum that is zero here).
    assert_eq!(r.stall_fraction(), 0.0);
    assert_eq!(r.comm_fraction(), 0.0);
}
