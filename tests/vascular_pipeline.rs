//! End-to-end vascular pipeline: procedural tree → surface mesh →
//! mesh-based SDF → block forest → voxelization → distributed flow
//! simulation — every §2.3 stage, chained.

use std::sync::Arc;
use trillium_core::pipeline::{setup_domain, Balancer};
use trillium_core::prelude::*;
use trillium_geometry::vec3::vec3;
use trillium_geometry::{MeshSdf, SignedDistance, VascularTree, VascularTreeParams};

fn small_tree() -> VascularTree {
    VascularTree::generate(&VascularTreeParams {
        generations: 3,
        segments_per_branch: 2,
        root_radius: 1.2,
        root_length: 6.0,
        tortuosity: 0.2,
        ..Default::default()
    })
}

/// The mesh extracted from the implicit tree must agree with the implicit
/// signed distance: same inside/outside classification away from the
/// surface, distances within the extraction resolution.
#[test]
fn mesh_sdf_agrees_with_implicit_tree() {
    let tree = small_tree();
    let cell = 0.25;
    let mesh = tree.to_mesh(cell);
    assert!(mesh.is_watertight());
    let mesh_sdf = MeshSdf::new(mesh);

    use rand::{Rng, SeedableRng};
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let bb = tree.bounding_box();
    let e = bb.extents();
    let mut checked = 0;
    for _ in 0..500 {
        let p = bb.min
            + vec3(
                rng.gen_range(0.0..1.0) * e.x,
                rng.gen_range(0.0..1.0) * e.y,
                rng.gen_range(0.0..1.0) * e.z,
            );
        let d_tree = tree.signed_distance(p);
        if d_tree.abs() < 1.5 * cell {
            continue; // near-surface: extraction error dominates
        }
        let d_mesh = mesh_sdf.signed_distance(p);
        assert_eq!(d_tree < 0.0, d_mesh < 0.0, "sign mismatch at {p:?}: {d_tree} vs {d_mesh}");
        // Distance agreement within a couple of extraction cells for
        // points near the vessel (far away the union SDF is exact but the
        // mesh may be closer to a different branch — both still positive).
        if d_tree.abs() < 4.0 * cell {
            assert!((d_tree - d_mesh).abs() < 2.0 * cell, "at {p:?}: {d_tree} vs {d_mesh}");
        }
        checked += 1;
    }
    assert!(checked > 100, "too few informative samples: {checked}");
}

/// Voxelizing against the extracted mesh and against the implicit tree
/// must mark (nearly) the same fluid cells.
#[test]
fn voxelization_consistent_between_mesh_and_implicit() {
    use trillium_field::{FlagOps, Shape};
    use trillium_geometry::voxelize::{voxelize_block, VoxelizeConfig};
    let tree = small_tree();
    let mesh_sdf = MeshSdf::new(tree.to_mesh(0.2));
    let bb = tree.bounding_box();
    let shape = Shape::cube(24);
    let origin = bb.center() - vec3(3.0, 3.0, 3.0);
    let dx = 0.25;
    let cfg = VoxelizeConfig::default();
    let f_tree = voxelize_block(&tree, origin, dx, shape, &cfg);
    let f_mesh = voxelize_block(&mesh_sdf, origin, dx, shape, &cfg);
    let (a, b) = (f_tree.count_fluid() as f64, f_mesh.count_fluid() as f64);
    assert!(a > 50.0, "block does not cover the vessel: {a}");
    assert!((a - b).abs() / a < 0.15, "fluid counts diverge: {a} vs {b}");
}

/// Inflow at the root must push net mass into the tree and produce flow
/// along the root vessel.
#[test]
fn inflow_drives_flow_through_tree() {
    let tree = Arc::new(small_tree());
    let setup = setup_domain(
        "tree-flow",
        tree.clone(),
        0.3,
        [8, 8, 8],
        2,
        Balancer::Morton,
        0.08,
        [0.0, 0.0, 0.04], // root vessel grows along +z
    );
    assert!(setup.total_fluid_cells() > 300.0);
    // The sparse geometry must actually produce partially covered blocks.
    assert!(setup.fluid_fraction() < 0.9);

    let r = run_distributed(&setup.scenario, 2, 1, 120);
    assert!(!r.has_nan());
    // Velocity inflow adds mass (until outlets balance it).
    assert!(r.mass_drift() > 1e-6, "no inflow effect: {}", r.mass_drift());
    let stats = r.total_stats();
    assert!(stats.fluid_cells > 0);
    assert!(stats.cells >= stats.fluid_cells);
}

/// A carved run that asks for the in-place kernel must degrade loudly,
/// not silently: sparse row-interval blocks have no AA-pattern variant,
/// so they resolve to pull — and that resolution is (a) visible on the
/// built block and (b) counted by the driver as `kernel.fallback_pull`.
#[test]
fn carved_inplace_request_surfaces_pull_fallback() {
    let tree = Arc::new(small_tree());
    let setup = setup_domain(
        "tree-fallback",
        tree,
        0.3,
        [8, 8, 8],
        2,
        Balancer::Morton,
        0.08,
        [0.0, 0.0, 0.04],
    );
    assert!(setup.fluid_fraction() < 0.9, "need partially covered blocks to carve");
    let scenario = setup.scenario.with_kernel(KernelChoice::InPlace);

    // Statically: the carved forest contains blocks whose requested
    // in-place scheme resolves to pull.
    let forest = scenario.make_forest(2);
    let mut fallbacks = 0u64;
    for view in &trillium_blockforest::distribute(&forest) {
        for lb in &view.blocks {
            let b = scenario.build_block(lb);
            if b.fell_back_to_pull() {
                assert_eq!(b.resolved_kernel_label(), "pull");
                fallbacks += 1;
            }
        }
    }
    assert!(fallbacks > 0, "carved tree produced no sparse blocks");

    // Dynamically: the driver surfaces exactly that count as a metric,
    // and the degraded run still computes sane physics.
    let r = run_distributed(&scenario, 2, 1, 40);
    assert!(!r.has_nan());
    assert_eq!(
        r.metrics().counter("kernel.fallback_pull"),
        fallbacks,
        "driver must report every silent InPlace -> Pull resolution"
    );
}

/// The weak-scaling property at miniature scale: doubling the block
/// budget refines dx and captures more fluid cells.
#[test]
fn partition_refinement_increases_resolution() {
    use trillium_core::pipeline::setup_weak_scaling;
    let tree = small_tree();
    let (f1, dx1) = setup_weak_scaling(&tree, [8, 8, 8], 32, 32);
    let (f2, dx2) = setup_weak_scaling(&tree, [8, 8, 8], 256, 256);
    assert!(dx2 < dx1);
    assert!(f2.total_workload() > f1.total_workload());
    // Fluid volume is invariant: workload × dx³ approximately constant.
    let v1 = f1.total_workload() * dx1.powi(3);
    let v2 = f2.total_workload() * dx2.powi(3);
    assert!((v1 - v2).abs() / v1 < 0.25, "volumes {v1} vs {v2}");
}
